// Command nbsim regenerates the paper's evaluation from the command line.
//
// Usage:
//
//	nbsim fig6a     [flags]   # Fig 6(a): relative light-sleep uptime increase
//	nbsim fig6b     [flags]   # Fig 6(b): relative connected-mode uptime increase
//	nbsim fig7      [flags]   # Fig 7: DR-SC transmissions vs fleet size
//	nbsim ablations [flags]   # A1-A4 + X1 (use -id to select one)
//	nbsim grid      [flags]   # user-defined scenario grid (-spec scenario.json)
//	nbsim rollout   [flags]   # heterogeneous city rollout (-spec city.json)
//	nbsim all       [flags]   # figures + ablations
//	nbsim run      [flags]    # one campaign, verbose per-device summary
//	nbsim merge    [flags] shard0.jsonl shard1.jsonl ...
//	                          # fold shard record files into the single-process output
//	nbsim tail     [flags] shard0.jsonl.status 'shard-*.jsonl.status' ...
//	                          # follow a live campaign's status sidecars
//	nbsim coordinate <sweep> [flags]
//	                          # supervise a fleet of local shard workers:
//	                          # spawn, watch heartbeats, restart crashes
//	                          # from checkpoints, auto-merge on completion
//
// Common flags: -seed, -runs, -devices, -ti, -mix, -workers, -csv, -quiet,
// -jsonl. Results print as aligned tables (and ASCII charts); -csv switches
// the tables to CSV for post-processing. -workers bounds how many campaigns
// simulate concurrently (default: all CPUs); results are bit-identical for
// every worker count. -jsonl <path> streams one JSON record per completed
// run to the file as the sweep executes — records arrive in index order
// and are never buffered in memory, so arbitrarily long sweeps spill
// straight to disk. An existing file is never clobbered: pass -force to
// overwrite or -resume to continue it.
//
// Distributed campaigns (every single-sweep invocation: fig6a, fig6b,
// fig7, grid, ablations -id <x>; see internal/campaign): -shard i/n
// executes the i-th of n interleaved slices of the sweep's task-index
// space in this process, writing its records plus a manifest sidecar
// (<file>.manifest) that pins the sweep's declarative task space; `nbsim
// merge` folds the completed shard files back into the exact
// single-process tables and record stream, printing P50/P95/P99 (P²
// streaming estimates) per metric to stderr. -resume continues an
// interrupted -jsonl campaign from its completed prefix, tolerating the
// torn final line a crash leaves; the finished file is byte-identical to
// an uninterrupted run's.
//
// `nbsim coordinate` (internal/coordinator) automates the whole
// shard/watch/restart/merge cycle on one machine: it spawns -shards
// worker processes of this same binary, restarts any that crash or stop
// heartbeating (resuming from their checkpoint files, under capped
// exponential backoff with a per-shard retry budget), drains the fleet
// gracefully on Ctrl-C, and merges automatically once every shard is
// done — the merged stream and tables are byte-identical to a
// single-process run even across worker crashes. Exhausting a shard's
// retry budget aborts the campaign with a non-zero exit and a per-shard
// post-mortem, never a silent partial merge.
//
// `nbsim grid -spec scenario.json` sweeps a user-defined scenario grid:
// the JSON spec lists fleet sizes, mechanisms, traffic mixes, TI values
// (ms), and payload sizes, and the cross product runs as one campaign
// (see examples/grid/scenario.json).
//
// `nbsim rollout -spec city.json` simulates a heterogeneous city rollout
// (see internal/network and examples/citywide-rollout): the spec declares
// cell profiles — coverage mixes, per-profile mechanisms, traffic mixes,
// TI and payload overrides, fixed or weighted device budgets — plus
// optional churn waves (detach/migrate/attach between snapshots). Each
// (wave, cell) pair is one task of a registered sweep, so -shard,
// -resume, -jsonl, -status, merge, tail, and coordinate all apply
// unchanged, and the merged output is byte-identical to a single-process
// run whatever the shard count or crash history.
//
// Live telemetry (internal/telemetry): every sweep that writes -jsonl also
// rewrites a `<file>.status` sidecar atomically while it runs — shard
// identity, progress, throughput, ETA, and per-metric streaming statistics
// (count/mean/min/max plus P² P50/P95/P99). `-status <path>` moves the
// sidecar (or enables it without -jsonl); `-status ”` disables it.
// `nbsim tail` follows one or many status files (globs welcome) and
// renders the fleet-wide view: aggregate progress, per-shard ETA and
// straggler flags, merged percentile estimates; -json emits one snapshot
// per poll for scripts, -once polls a single time. Sweeps also print the
// same per-metric distribution table to stderr when they finish, so the
// live status, the resumed run, and `nbsim merge` all report the same
// streaming statistics. Telemetry is pure observation: record streams and
// tables are byte-identical with it on or off.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"nbiot/internal/campaign"
	"nbiot/internal/cell"
	"nbiot/internal/core"
	"nbiot/internal/experiment"
	"nbiot/internal/multicast"
	"nbiot/internal/network"
	"nbiot/internal/report"
	"nbiot/internal/rng"
	"nbiot/internal/simtime"
	"nbiot/internal/telemetry"
	"nbiot/internal/trace"
	"nbiot/internal/traffic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nbsim:", err)
		os.Exit(1)
	}
}

// printer is the one gate every operator-facing progress or summary line
// passes through: stderr output that respects -quiet in a single place
// instead of scattered fmt.Fprintln(os.Stderr, ...) calls. Result tables
// and records still go to stdout — the printer is for telemetry about the
// run, never the run's output.
type printer struct {
	quiet bool
	w     io.Writer
}

func newPrinter(quiet bool) *printer { return &printer{quiet: quiet, w: os.Stderr} }

func (p *printer) linef(format string, args ...any) {
	if p == nil || p.quiet {
		return
	}
	fmt.Fprintf(p.w, format+"\n", args...)
}

func (p *printer) table(t *report.Table) {
	if p == nil || p.quiet {
		return
	}
	fmt.Fprintln(p.w, t.String())
}

// cliOptions holds the parsed common flags.
type cliOptions struct {
	exp        experiment.Options
	csv        bool
	quiet      bool
	mixName    string
	jsonlPath  string
	statusPath string
	resume     bool
	force      bool
	shardSpec  string
	specPath   string
	failAfter  int
	grid       experiment.GridSpec
	rollout    *network.ScenarioSpec
	out        *printer
	// run-subcommand extras
	mechanism string
	size      int64
	ablation  string
	jsonOut   bool
	traceN    int
	// profiling
	cpuProfile string
	memProfile string
}

func parseFlags(cmd string, args []string) (cliOptions, error) {
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	var o cliOptions
	fs.Int64Var(&o.exp.Seed, "seed", 1, "master random seed")
	fs.IntVar(&o.exp.Runs, "runs", 0, "runs per data point (default: paper's 100; shape-preserving smaller values run faster)")
	fs.IntVar(&o.exp.Devices, "devices", 0, "fleet size for fig6a/fig6b/run (default 500)")
	fs.IntVar(&o.exp.Workers, "workers", 0, "concurrent campaign simulations (default: all CPUs; results are identical for any value)")
	tiSec := fs.Float64("ti", 10, "inactivity timer in seconds (paper: 10-30)")
	fs.StringVar(&o.mixName, "mix", "paper-calibrated", "fleet mix: "+strings.Join(mixNames(), ", "))
	fs.BoolVar(&o.csv, "csv", false, "emit CSV instead of aligned tables")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress progress lines")
	fs.StringVar(&o.jsonlPath, "jsonl", "", "stream one JSON record per completed run to this file as the sweep executes")
	fs.StringVar(&o.statusPath, "status", "auto", "live status sidecar: 'auto' follows -jsonl (<file>.status), '' disables, any other value is the path")
	fs.BoolVar(&o.resume, "resume", false, "resume an interrupted -jsonl campaign from its completed prefix (single-sweep subcommands)")
	fs.BoolVar(&o.force, "force", false, "overwrite an existing -jsonl results file instead of refusing")
	fs.StringVar(&o.shardSpec, "shard", "", "execute one shard i/n of the sweep's task space (1-based, e.g. 2/3; single-sweep subcommands, requires -jsonl)")
	fs.StringVar(&o.specPath, "spec", "", "grid/rollout: JSON scenario-spec file defining the sweep (grid axes or city profiles)")
	fs.StringVar(&o.mechanism, "mechanism", "DA-SC", "run: mechanism (Unicast, DR-SC, DA-SC, DR-SI, SC-PTM)")
	fs.Int64Var(&o.size, "size", multicast.Size1MB, "run: payload bytes")
	fs.BoolVar(&o.jsonOut, "json", false, "run: emit a JSON summary instead of a table")
	fs.IntVar(&o.traceN, "trace", 0, "run: print the last N timeline events")
	fs.StringVar(&o.ablation, "id", "", "ablations: one of greedy-vs-exact, ti-sweep, mix-sweep, paging-capacity, scptm (default all)")
	fs.IntVar(&o.failAfter, "fail-after-tasks", 0, "TEST ONLY: crash this worker (exit code 43) after N records are accepted and flushed — deterministic fault injection for crash-recovery tests; requires -jsonl")
	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile of the sweep to this file (go tool pprof)")
	fs.StringVar(&o.memProfile, "memprofile", "", "write an allocation profile taken at sweep end to this file (go tool pprof)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	o.exp.TI = simtime.Ticks(*tiSec * 1000)
	mix, ok := traffic.Mixes()[o.mixName]
	if !ok {
		return o, fmt.Errorf("unknown mix %q (have %s)", o.mixName, strings.Join(mixNames(), ", "))
	}
	o.exp.Mix = mix
	if o.shardSpec != "" {
		idx, count, serr := parseShard(o.shardSpec)
		if serr != nil {
			return o, serr
		}
		o.exp.ShardIndex, o.exp.ShardCount = idx, count
	}
	o.out = newPrinter(o.quiet)
	if !o.quiet {
		// Progress stays nil under -quiet so sweeps skip the formatting work
		// entirely; the printer re-checks quiet only as a safety net.
		o.exp.Progress = o.out.linef
	}
	return o, nil
}

// parseShard parses "i/n" (1-based, so 1/3 is the first of three shards)
// into the 0-based shard coordinates the experiment layer uses.
func parseShard(spec string) (index, count int, err error) {
	is, ns, ok := strings.Cut(spec, "/")
	if ok {
		i, ierr := strconv.Atoi(is)
		n, nerr := strconv.Atoi(ns)
		if ierr == nil && nerr == nil && n >= 1 && i >= 1 && i <= n {
			return i - 1, n, nil
		}
	}
	return 0, 0, fmt.Errorf("bad -shard %q: want i/n with 1 <= i <= n (e.g. 2/3)", spec)
}

func mixNames() []string {
	names := make([]string, 0)
	for name := range traffic.Mixes() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// sweepName resolves an invocation to the single registered sweep it
// runs, or ok == false for composite invocations (ablations without -id,
// all) that nest several sweeps. Single sweeps are the unit
// -shard/-resume and manifests are defined over.
func sweepName(cmd string, o cliOptions) (string, bool) {
	switch cmd {
	case "fig6a", "fig6b", "fig7", "grid", "rollout":
		return cmd, true
	case "ablations":
		if o.ablation != "" && experiment.IsSweep(o.ablation) {
			return o.ablation, true
		}
	}
	return "", false
}

func run(args []string) (err error) {
	if len(args) == 0 {
		return fmt.Errorf("usage: nbsim {fig6a|fig6b|fig7|ablations|grid|rollout|all|run|merge|tail|coordinate|bench} [flags]")
	}
	cmd, rest := args[0], args[1:]
	if cmd == "merge" {
		return runMerge(rest)
	}
	if cmd == "coordinate" {
		return runCoordinate(rest)
	}
	if cmd == "bench" {
		return runBench(rest)
	}
	if cmd == "tail" {
		return runTail(rest)
	}
	switch cmd {
	case "fig6a", "fig6b", "fig7", "ablations", "grid", "rollout", "all", "run":
	default:
		// Reject before -jsonl wiring below may touch an existing file.
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
	o, err := parseFlags(cmd, rest)
	if err != nil {
		return err
	}
	if cmd == "grid" {
		if o.grid, err = loadGridSpec(o.specPath); err != nil {
			return err
		}
	}
	if cmd == "rollout" {
		// A rollout is meaningless without a scenario; validate the spec
		// before -jsonl wiring below may touch an existing file.
		if o.specPath == "" {
			return fmt.Errorf("rollout needs -spec: a JSON scenario file declaring the city's cell profiles (see examples/citywide-rollout)")
		}
		spec, serr := network.LoadScenarioSpec(o.specPath)
		if serr != nil {
			return serr
		}
		o.rollout = &spec
	}
	name, single := sweepName(cmd, o)
	if o.exp.ShardCount > 1 || o.resume {
		if !single {
			return fmt.Errorf("-shard/-resume apply to single-sweep invocations (fig6a, fig6b, fig7, grid, rollout, ablations -id <x>), not %q", cmd)
		}
		if o.jsonlPath == "" {
			return fmt.Errorf("-shard/-resume need -jsonl: the record file is the campaign's durable state")
		}
	}
	if o.resume && o.force {
		return fmt.Errorf("-resume appends to the existing file and -force overwrites it; choose one")
	}
	if o.failAfter < 0 {
		return fmt.Errorf("-fail-after-tasks wants a positive record count, got %d", o.failAfter)
	}
	if o.failAfter > 0 {
		if cmd == "run" {
			return fmt.Errorf("-fail-after-tasks is test-only fault injection for sweep subcommands, not %q", cmd)
		}
		if o.jsonlPath == "" {
			return fmt.Errorf("-fail-after-tasks needs -jsonl: the injected crash must leave durable records to recover from")
		}
	}
	var sink *jsonlSink
	if o.jsonlPath != "" {
		if cmd == "run" {
			// runSingle is one campaign, not a sweep — nothing would ever be
			// recorded, and silently creating an empty file misleads.
			return fmt.Errorf("-jsonl applies to sweep subcommands (fig6a, fig6b, fig7, grid, rollout, ablations, all), not %q", cmd)
		}
		sink, err = openJSONL(name, single, &o)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := sink.close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		if o.failAfter > 0 {
			wrapFailAfter(&o, sink)
		}
	}
	// Live telemetry: a shared MetricSet feeds both the status sidecar and
	// the end-of-run distribution table, tapped from the engine's Observe
	// hook. Quiet runs without a status sink leave Observe nil, so the
	// record hot path pays nothing.
	statusPath, err := resolveStatusPath(cmd, o)
	if err != nil {
		return err
	}
	ms := telemetry.NewMetricSet()
	var tracker *telemetry.Tracker
	if cmd != "run" {
		if statusPath != "" {
			c, cerr := campaignFor(cmd, name, single, o, sink)
			if cerr != nil {
				return cerr
			}
			tracker = telemetry.NewTracker(c, ms, telemetry.NewFileSink(statusPath), telemetry.TrackerOptions{})
			defer func() {
				// Telemetry is best-effort: a sink failure becomes a warning,
				// never the run's error.
				if cerr := tracker.Close(err == nil); cerr != nil {
					fmt.Fprintf(os.Stderr, "nbsim: status sidecar: %v\n", cerr)
				}
			}()
		}
		if tracker != nil || !o.quiet {
			o.exp.Observe = func(rec experiment.RunRecord) {
				if tracker != nil {
					tracker.Task(rec.Metric, rec.Value, rec.FleetSize)
				} else {
					ms.Add(rec.Metric, rec.Value)
				}
			}
		}
		if o.resume && o.exp.Observe != nil {
			// Replay the checkpointed prefix (in stored order) before the
			// live tail so the streaming statistics cover the whole campaign
			// — prefix-then-tail is exactly the file's final order, which is
			// why a resumed run's summary matches an uninterrupted one's.
			if rerr := fileRecords(sink.path)(func(rec experiment.RunRecord) error {
				if tracker != nil {
					tracker.Prime(rec.Metric, rec.Value)
				} else {
					ms.Add(rec.Metric, rec.Value)
				}
				return nil
			}); rerr != nil {
				return fmt.Errorf("priming telemetry from %s: %w", sink.path, rerr)
			}
		}
		if tracker != nil {
			tracker.Start()
		}
	}
	stopProfiles, err := startProfiles(o)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()
	switch cmd {
	case "fig6a", "fig6b", "fig7", "grid", "rollout":
		err = runSweepCmd(cmd, o, sink)
	case "ablations":
		err = runAblations(o, sink)
	case "all":
		for _, fig := range []string{"fig6a", "fig6b", "fig7"} {
			if err = runSweepCmd(fig, o, sink); err != nil {
				return err
			}
		}
		err = runAblations(o, sink)
	case "run":
		return runSingle(o)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
	if err != nil {
		return err
	}
	if ms.Records() > 0 {
		// The same streaming distribution table merge prints — one summary
		// for the whole invocation, composites included.
		o.out.table(ms.Table())
	}
	return nil
}

// faultExitCode is the exit status of a -fail-after-tasks injected
// crash, distinct from 1 (real errors) so harnesses can tell a planted
// fault from a genuine failure.
const faultExitCode = 43

// wrapFailAfter arms the test-only -fail-after-tasks fault: after N
// records have been accepted by the sink, flush them to disk and exit
// the process abruptly — no sink close, no final status write, exactly
// the state a real mid-campaign crash leaves (durable record prefix,
// stale status sidecar). Deterministic by construction: records are
// accepted serially in index order, so the surviving prefix is always
// the same N records.
func wrapFailAfter(o *cliOptions, sink *jsonlSink) {
	inner := o.exp.Record
	accepted := 0
	o.exp.Record = func(rec experiment.RunRecord) error {
		if err := inner(rec); err != nil {
			return err
		}
		accepted++
		if accepted >= o.failAfter {
			_ = sink.flush()
			fmt.Fprintf(os.Stderr, "nbsim: fault injection: crashing after %d accepted records (-fail-after-tasks)\n", accepted)
			os.Exit(faultExitCode)
		}
		return nil
	}
}

// resolveStatusPath maps the -status flag to a sidecar path: "auto"
// publishes next to -jsonl (status emission is on by default for recorded
// sweeps), "" disables, anything else is an explicit path — valid even
// without -jsonl, so a purely in-memory sweep can still be tailed.
func resolveStatusPath(cmd string, o cliOptions) (string, error) {
	switch o.statusPath {
	case "":
		return "", nil
	case "auto":
		if o.jsonlPath != "" && cmd != "run" {
			return telemetry.StatusPath(o.jsonlPath), nil
		}
		return "", nil
	default:
		if cmd == "run" {
			return "", fmt.Errorf("-status applies to sweep subcommands, not %q", cmd)
		}
		return o.statusPath, nil
	}
}

// campaignFor derives the identity a status sidecar publishes. Recorded
// single sweeps take it from the campaign manifest (sharding and resume
// included); everything else — unrecorded sweeps, composite invocations
// like `all` — synthesizes an unsharded identity whose task total spans
// every sweep the invocation will run, so progress still counts up to a
// meaningful denominator.
func campaignFor(cmd, name string, single bool, o cliOptions, sink *jsonlSink) (telemetry.Campaign, error) {
	if sink != nil && sink.hasManifest {
		return sink.manifest.Telemetry(o.exp.SkipTasks), nil
	}
	var sweeps []string
	campaignName := cmd
	switch {
	case single:
		sweeps = []string{name}
		campaignName = name
	case cmd == "all":
		sweeps = append([]string{"fig6a", "fig6b", "fig7"}, ablationIDs...)
	case cmd == "ablations":
		sweeps = ablationIDs
	default:
		return telemetry.Campaign{}, fmt.Errorf("no campaign identity for %q", cmd)
	}
	total := 0
	for _, s := range sweeps {
		var n int
		var err error
		if s == "grid" {
			// The grid's task space depends on the -spec file, not only the
			// common flags, so size it from the loaded spec.
			sp, serr := o.grid.Space(o.exp)
			if serr != nil {
				return telemetry.Campaign{}, serr
			}
			n = sp.Tasks()
		} else if s == "rollout" {
			// Same for a rollout: the (wave, cell) space comes from -spec.
			sp, serr := experiment.RolloutSpace(*o.rollout)
			if serr != nil {
				return telemetry.Campaign{}, serr
			}
			n = sp.Tasks()
		} else if n, err = experiment.Tasks(s, o.exp); err != nil {
			return telemetry.Campaign{}, err
		}
		total += n
	}
	return telemetry.Campaign{
		Experiment: campaignName,
		ShardCount: 1,
		TotalTasks: total,
		ShardTasks: total,
	}, nil
}

// loadGridSpec reads a scenario-spec JSON file; an empty path means the
// default single-cell grid at the common flags.
func loadGridSpec(path string) (experiment.GridSpec, error) {
	var spec experiment.GridSpec
	if path == "" {
		return spec, nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return spec, fmt.Errorf("grid spec: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("grid spec %s: %w", path, err)
	}
	return spec, nil
}

// jsonlSink owns the -jsonl record file: the refuse-to-clobber creation
// policy, the manifest sidecar for shardable sweeps, resume recovery, and
// the buffered writer behind the sweep's Record hook. Records arrive
// serially, in index order, from each sweep's streaming reducer, so no
// locking or buffering of results is needed — the file grows as the sweep
// executes, whatever the worker count. A write failure propagates back
// through the reducer and aborts the sweep (no point simulating for hours
// onto a full disk).
type jsonlSink struct {
	path        string
	f           *os.File
	w           *bufio.Writer
	writeErr    error
	manifest    campaign.Manifest
	hasManifest bool
}

// openJSONL builds the sink: fresh (O_EXCL unless -force, manifest
// sidecar written for single-sweep invocations) or resumed (on-disk
// manifest verified against the flags, crash damage truncated, sweep
// offset to the completed prefix). Composite invocations (ablations
// without -id, all) stream records without a manifest — several sweeps
// share the file, so no single task space describes it.
func openJSONL(name string, single bool, o *cliOptions) (*jsonlSink, error) {
	s := &jsonlSink{path: o.jsonlPath}
	if single {
		var m campaign.Manifest
		var err error
		if name == "rollout" {
			m, err = campaign.NewRollout(*o.rollout, o.exp, o.exp.ShardIndex, o.exp.ShardCount)
		} else if name == "grid" {
			m, err = campaign.NewGrid(o.grid, o.exp, o.exp.ShardIndex, o.exp.ShardCount)
		} else {
			m, err = campaign.New(name, o.exp, o.exp.ShardIndex, o.exp.ShardCount)
		}
		if err != nil {
			return nil, err
		}
		s.manifest, s.hasManifest = m, true
	}
	if o.resume {
		onDisk, err := campaign.ReadFile(campaign.Path(s.path))
		if err != nil {
			return nil, err
		}
		if err := s.manifest.SameCampaign(onDisk); err != nil {
			return nil, fmt.Errorf("these flags do not continue %s: %w", s.path, err)
		}
		f, cp, err := campaign.OpenResume(s.path, s.manifest)
		if err != nil {
			return nil, err
		}
		o.exp.SkipTasks = cp.Completed
		s.f = f
		if o.exp.Progress != nil {
			o.exp.Progress("resume %s: %d/%d shard tasks already recorded (torn tail dropped: %v)",
				s.path, cp.Completed, s.manifest.ShardTasks(), cp.Torn)
		}
	} else {
		f, err := createExclusive(s.path, o.force, "pass -resume to continue it or -force to overwrite")
		if err != nil {
			return nil, fmt.Errorf("jsonl: %w", err)
		}
		s.f = f
		if s.hasManifest {
			if err := s.manifest.WriteFile(campaign.Path(s.path)); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	s.w = bufio.NewWriter(s.f)
	record := campaign.RecordWriter(s.w)
	o.exp.Record = func(rec experiment.RunRecord) error {
		if s.writeErr == nil {
			s.writeErr = record(rec)
		}
		if s.writeErr != nil {
			return fmt.Errorf("jsonl %s: %w", s.path, s.writeErr)
		}
		return nil
	}
	return s, nil
}

// flush pushes buffered records to disk, leaving the sink usable.
func (s *jsonlSink) flush() error {
	if err := s.w.Flush(); s.writeErr == nil {
		s.writeErr = err
	}
	if s.writeErr != nil {
		return fmt.Errorf("jsonl %s: %w", s.path, s.writeErr)
	}
	return nil
}

// close flushes and closes, reporting the first error the sink saw.
func (s *jsonlSink) close() error {
	if err := s.w.Flush(); s.writeErr == nil {
		s.writeErr = err
	}
	if err := s.f.Close(); s.writeErr == nil {
		s.writeErr = err
	}
	if s.writeErr != nil {
		return fmt.Errorf("jsonl %s: %w", s.path, s.writeErr)
	}
	return nil
}

// shardDone reports a completed shard run in place of a table: a sharded
// run's in-process accumulators cover only its slice of the sweep, so the
// honest outputs are the record file and the merge instructions.
func (s *jsonlSink) shardDone() error {
	if err := s.flush(); err != nil {
		return err
	}
	m := s.manifest
	fmt.Printf("shard %d/%d complete: %d of %d tasks → %s\nmerge the full shard set with: nbsim merge -out merged.jsonl <shard files>\n",
		m.ShardIndex+1, m.ShardCount, m.ShardTasks(), m.Tasks, s.path)
	return nil
}

// startProfiles begins the -cpuprofile capture and returns a stop function
// that finishes both requested profiles — so future hot-path work starts
// from a profile, not a guess. With neither flag set both steps are no-ops.
func startProfiles(o cliOptions) (func() error, error) {
	var cpuF *os.File
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return err
			}
		}
		if o.memProfile != "" {
			f, err := os.Create(o.memProfile)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // flush recent frees so the profile shows live vs total
			return pprof.Lookup("allocs").WriteTo(f, 0)
		}
		return nil
	}, nil
}

// createExclusive opens path for writing under the refuse-to-clobber
// policy shared by -jsonl and merge -out: creation fails if the file
// exists unless force truncates it, and hint tells the user the way out.
func createExclusive(path string, force bool, hint string) (*os.File, error) {
	flags := os.O_WRONLY | os.O_CREATE | os.O_EXCL
	if force {
		flags = os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("%s exists; %s", path, hint)
		}
		return nil, err
	}
	return f, nil
}

// samePath reports whether two paths name the same file: equal after
// cleaning, or resolving to the same inode when both exist.
func samePath(a, b string) bool {
	if filepath.Clean(a) == filepath.Clean(b) {
		return true
	}
	ai, aerr := os.Stat(a)
	bi, berr := os.Stat(b)
	return aerr == nil && berr == nil && os.SameFile(ai, bi)
}

// fileRecords streams a JSONL record file in stored order.
func fileRecords(path string) experiment.RecordSeq {
	return func(yield func(experiment.RunRecord) error) error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		br := bufio.NewReader(f)
		for {
			line, rerr := br.ReadString('\n')
			if len(line) > 0 {
				var rec experiment.RunRecord
				if err := json.Unmarshal([]byte(line), &rec); err != nil {
					return fmt.Errorf("%s: %w", path, err)
				}
				if err := yield(rec); err != nil {
					return err
				}
			}
			if rerr == io.EOF {
				return nil
			}
			if rerr != nil {
				return rerr
			}
		}
	}
}

func emit(o cliOptions, t *report.Table) {
	if o.csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t.String())
}

// emitResult prints a sweep result's table, plus its chart when the
// result renders one and the output is not CSV.
func emitResult(o cliOptions, res experiment.SweepResult) {
	emit(o, res.Table())
	if !o.csv {
		if c, ok := res.(experiment.Charter); ok {
			fmt.Println(c.Chart().String())
		}
	}
}

// runSweepCmd executes one registered sweep end to end: the live run, the
// sharded-run report, and the resumed-run display rebuild. A resumed
// sweep only executed the tail past the checkpoint, so its in-process
// accumulators are partial; the record file now holds the complete
// stream, and folding it back (same accumulation code, same float64
// values, same order) yields tables bit-identical to an uninterrupted
// run's.
func runSweepCmd(name string, o cliOptions, sink *jsonlSink) error {
	var res experiment.SweepResult
	var err error
	switch name {
	case "grid":
		res, err = experiment.Grid(o.exp, o.grid)
	case "rollout":
		res, err = experiment.Rollout(o.exp, *o.rollout)
	default:
		res, err = experiment.RunSweep(name, o.exp)
	}
	if err != nil {
		return err
	}
	if o.exp.ShardCount > 1 {
		return sink.shardDone()
	}
	if o.resume {
		if err := sink.flush(); err != nil {
			return err
		}
		res, err = experiment.SweepFromRecords(name, o.exp, sink.manifest.Space, fileRecords(sink.path))
		if err != nil {
			return fmt.Errorf("rebuilding tables from %s: %w", sink.path, err)
		}
	}
	emitResult(o, res)
	return nil
}

// runMerge folds a completed shard set back into the single-process
// output: the exact figure table (and chart) an unsharded run prints and,
// with -out, the byte-identical merged record stream plus its manifest.
func runMerge(args []string) (err error) {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	var out string
	var csvOut, force, quiet bool
	fs.StringVar(&out, "out", "", "write the merged record stream (and its manifest sidecar) to this JSONL file")
	fs.BoolVar(&csvOut, "csv", false, "emit CSV instead of aligned tables")
	fs.BoolVar(&force, "force", false, "overwrite an existing -out file")
	fs.BoolVar(&quiet, "quiet", false, "suppress the stderr distribution summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("usage: nbsim merge [-out merged.jsonl] [-csv] [-quiet] shard0.jsonl shard1.jsonl ...")
	}
	first, err := campaign.ReadFile(campaign.Path(paths[0]))
	if err != nil {
		return err
	}
	opts, err := first.Options()
	if err != nil {
		return err
	}

	var w io.Writer = io.Discard
	var bw *bufio.Writer
	var f *os.File
	if out != "" {
		// -force truncates -out at open; refuse an -out that is one of the
		// input shards, or the truncation would destroy that shard's records
		// before the merge ever reads them.
		for _, p := range paths {
			if samePath(out, p) {
				return fmt.Errorf("merge: -out %s is one of the shard inputs", out)
			}
		}
		f, err = createExclusive(out, force, "pass -force to overwrite")
		if err != nil {
			return fmt.Errorf("merge: %w", err)
		}
		defer func() {
			if err != nil {
				f.Close()
				os.Remove(out) // don't leave a half-merged stream behind
			}
		}()
		bw = bufio.NewWriter(f)
		w = bw
	}

	var merged campaign.Manifest
	ms := telemetry.NewMetricSet()
	seq := experiment.RecordSeq(func(yield func(experiment.RunRecord) error) error {
		m, err := campaign.Merge(w, paths, func(rec experiment.RunRecord) error {
			ms.Add(rec.Metric, rec.Value)
			return yield(rec)
		})
		if err != nil {
			return err
		}
		merged = m
		return nil
	})
	res, err := experiment.SweepFromRecords(first.Experiment, opts, first.Space, seq)
	if err != nil {
		return err
	}
	emitResult(cliOptions{csv: csvOut}, res)
	// The distribution summary goes to stderr: stdout stays byte-identical
	// to the single-process run's tables, which scripts (and the CI smoke)
	// diff against. Same MetricSet as live sweeps and tail, fed the merged
	// stream in its stored (index) order — so all three surfaces agree.
	newPrinter(quiet).table(ms.Table())
	if f != nil {
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("merge: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("merge: %w", err)
		}
		if err := merged.WriteFile(campaign.Path(out)); err != nil {
			return err
		}
	}
	return nil
}

// ablationIDs is the `ablations` suite in presentation order; each is a
// registered sweep, so any one of them shards and resumes via -id.
var ablationIDs = []string{"greedy-vs-exact", "ti-sweep", "mix-sweep", "paging-capacity", "scptm"}

func runAblations(o cliOptions, sink *jsonlSink) error {
	any := false
	for _, id := range ablationIDs {
		if o.ablation != "" && o.ablation != id {
			continue
		}
		any = true
		if err := runSweepCmd(id, o, sink); err != nil {
			return err
		}
	}
	if !any {
		return fmt.Errorf("unknown ablation id %q", o.ablation)
	}
	return nil
}

func parseMechanism(name string) (core.Mechanism, error) {
	for _, m := range core.AllMechanisms() {
		if strings.EqualFold(m.String(), name) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mechanism %q (want Unicast, DR-SC, DA-SC, DR-SI or SC-PTM)", name)
}

func runSingle(o cliOptions) error {
	mech, err := parseMechanism(o.mechanism)
	if err != nil {
		return err
	}
	// One shared defaulting path: the harness's WithDefaults, not a
	// duplicated set of fallbacks that could drift from it.
	exp := o.exp.WithDefaults()
	fleet, err := exp.Mix.Generate(exp.Devices, rng.NewStream(exp.Seed))
	if err != nil {
		return err
	}
	var rec *trace.Recorder
	if o.traceN > 0 {
		rec = trace.NewRecorder(o.traceN)
	}
	res, err := cell.Run(cell.Config{
		Mechanism:       mech,
		Fleet:           fleet,
		TI:              exp.TI,
		PageGuard:       100 * simtime.Millisecond,
		PayloadBytes:    o.size,
		Seed:            exp.Seed,
		UniformCoverage: true,
		Trace:           rec,
	})
	if err != nil {
		return err
	}
	if rec != nil {
		defer func() {
			fmt.Println()
			_ = rec.WriteTimeline(os.Stdout)
		}()
	}
	if o.jsonOut {
		return res.WriteJSON(os.Stdout)
	}
	t := report.NewTable(
		fmt.Sprintf("Campaign: %v, %d devices, %s payload", mech, res.NumDevices, multicast.SizeLabel(o.size)),
		"metric", "value")
	t.AddRow("multicast transmissions", fmt.Sprintf("%d", res.NumTransmissions))
	t.AddRow("campaign end", res.CampaignEnd.String())
	t.AddRow("total light-sleep uptime", res.TotalLightSleep().String())
	t.AddRow("total connected uptime", res.TotalConnected().String())
	t.AddRow("paging messages", fmt.Sprintf("%d (%d B)", res.ENB.PagingMessages, res.ENB.PagingBytes))
	t.AddRow("extended pages", fmt.Sprintf("%d", res.ENB.ExtendedPages))
	t.AddRow("signalling messages", fmt.Sprintf("%d (%d B)", res.ENB.SignallingMessages, res.ENB.SignallingBytes))
	t.AddRow("data airtime", res.ENB.DataAirtime.String())
	t.AddRow("RA procedures", fmt.Sprintf("%d (%d attempts, %d collisions)",
		res.MAC.Procedures, res.MAC.Attempts, res.MAC.Collisions))
	t.AddRow("inactivity-timer violations", fmt.Sprintf("%d", res.TimerViolations))
	emit(o, t)
	return nil
}
