package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"nbiot/internal/telemetry"
)

// runTail implements `nbsim tail`: follow one or many status sidecars
// (internal/telemetry) and render the fleet-wide view — aggregate
// progress, per-shard ETA with live/stale/done heartbeat classification
// (-heartbeat sets the staleness threshold) and straggler flags, and
// merged P² percentile estimates. Arguments are paths or globs (quote
// globs so the shell does not expand a pattern whose files do not exist
// yet); missing or not-yet-written sidecars render as pending rows, never
// errors, because tailing a fleet that is still launching is the normal
// case. The loop polls every -interval until the fleet reports done;
// -once takes a single snapshot, and -json swaps the tables for one
// machine-readable JSON snapshot per poll on stdout.
//
// Exit code: with -once, finding no readable status file at all (every
// glob matched nothing, or only unreadable files) exits non-zero —
// scripts probing a fleet get a definitive "nothing is publishing"
// instead of an empty snapshot that looks healthy. The follow loop keeps
// waiting instead: workers that have not launched yet are its normal
// starting state.
func runTail(args []string) error {
	fs := flag.NewFlagSet("tail", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit one JSON snapshot per poll instead of tables")
	once := fs.Bool("once", false, "take one snapshot and exit instead of following until done (exits non-zero if no status file is readable)")
	interval := fs.Duration("interval", 2*time.Second, "poll period")
	heartbeat := fs.Duration("heartbeat", telemetry.DefaultHeartbeat, "status-file age beyond which a running shard is flagged STALE")
	if err := fs.Parse(args); err != nil {
		return err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		return fmt.Errorf("usage: nbsim tail [-json] [-once] [-interval 2s] [-heartbeat 10s] <status file or glob> ...")
	}
	enc := json.NewEncoder(os.Stdout)
	for first := true; ; first = false {
		paths, err := expandStatusGlobs(patterns)
		if err != nil {
			return err
		}
		shards, missing := telemetry.Load(paths, time.Now())
		if *once && len(shards) == 0 {
			return fmt.Errorf("tail: no readable status file among %d path(s) — nothing is publishing", len(missing))
		}
		snap := telemetry.AggregateHeartbeat(shards, missing, *heartbeat)
		if *jsonOut {
			if err := enc.Encode(snap); err != nil {
				return err
			}
		} else {
			if !first {
				fmt.Println()
			}
			fmt.Print(snap.Render())
		}
		if *once || snap.Done {
			return nil
		}
		time.Sleep(*interval)
	}
}

// expandStatusGlobs resolves each argument as a glob, keeping a pattern
// that matches nothing as a literal path — it names a sidecar whose worker
// has not started yet, which Load reports as missing rather than failing.
// The result is deduplicated and sorted so shard rows render stably.
func expandStatusGlobs(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var paths []string
	for _, p := range patterns {
		matches, err := filepath.Glob(p)
		if err != nil {
			return nil, fmt.Errorf("tail: bad pattern %q: %w", p, err)
		}
		if len(matches) == 0 {
			matches = []string{p}
		}
		for _, m := range matches {
			if !seen[m] {
				seen[m] = true
				paths = append(paths, m)
			}
		}
	}
	sort.Strings(paths)
	return paths, nil
}
