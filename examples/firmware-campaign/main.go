// Firmware-campaign: compare all four delivery strategies (unicast baseline
// plus the paper's three grouping mechanisms) on the same fleet and the
// same firmware image — the decision an NB-IoT operator actually faces.
//
// The output reproduces the paper's qualitative conclusions (Sec. VI):
// DR-SC burns bandwidth (many transmissions), DR-SI is cheapest overall but
// needs a protocol change, and DA-SC is the best standards-compliant
// trade-off.
package main

import (
	"fmt"
	"log"
	"os"

	"nbiot"
	"nbiot/internal/report"
)

func main() {
	const devices = 400
	fleet, err := nbiot.EricssonCityMix().Generate(devices, nbiot.NewStream(7))
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable(
		fmt.Sprintf("Delivering a 1MB firmware image to %d devices (Ericsson city mix)", devices),
		"mechanism", "standards", "tx", "light sleep", "connected", "paging B", "signalling B")

	type row struct {
		mech  nbiot.Mechanism
		res   *nbiot.CampaignResult
		light nbiot.Ticks
		conn  nbiot.Ticks
	}
	var baseline row
	for _, mech := range nbiot.Mechanisms() {
		res, err := nbiot.RunCampaign(nbiot.CampaignConfig{
			Mechanism:       mech,
			Fleet:           fleet,
			TI:              10 * nbiot.Second,
			PayloadBytes:    nbiot.Size1MB,
			Seed:            7,
			UniformCoverage: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		r := row{mech: mech, res: res, light: res.TotalLightSleep(), conn: res.TotalConnected()}
		if mech == nbiot.MechanismUnicast {
			baseline = r
		}
		compliant := "yes"
		if !mech.StandardsCompliant() {
			compliant = "NO"
		}
		t.AddRow(
			mech.String(),
			compliant,
			fmt.Sprintf("%d", res.NumTransmissions),
			relative(r.light, baseline.light),
			relative(r.conn, baseline.conn),
			fmt.Sprintf("%d", res.ENB.PagingBytes),
			fmt.Sprintf("%d", res.ENB.SignallingBytes),
		)
	}
	fmt.Println(t.String())
	fmt.Println("light sleep / connected are relative to the unicast baseline;")
	fmt.Println("DA-SC offers the single-transmission bandwidth of DR-SI without protocol changes.")
	os.Exit(0)
}

// relative renders x against a baseline as a signed percentage.
func relative(x, base nbiot.Ticks) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.2f%%", 100*float64(x-base)/float64(base))
}
