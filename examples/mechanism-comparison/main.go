// Mechanism-comparison: a miniature of the paper's Fig. 6(b) — how the
// connected-mode energy overhead of each grouping mechanism shrinks as the
// firmware image grows, and what that means for choosing a mechanism.
//
// The paper's observation: the grouping overhead (waiting ~TI/2 for the
// shared transmission, plus DA-SC's extra reconfiguration connection) is
// constant per campaign, so its share of the total connected time falls as
// the payload — and with it the reception time — grows. Above ~1 MB the
// DA-SC overhead is "practically negligible" (Sec. IV-B).
package main

import (
	"fmt"
	"log"

	"nbiot"
	"nbiot/internal/multicast"
	"nbiot/internal/report"
)

func main() {
	const devices = 200
	const runs = 3

	sizes := []int64{nbiot.Size100KB, nbiot.Size1MB, nbiot.Size10MB}
	cols := []string{"mechanism"}
	for _, s := range sizes {
		cols = append(cols, multicast.SizeLabel(s))
	}
	t := report.NewTable(
		"Relative connected-mode uptime increase vs unicast (mean of 3 fleets)",
		cols...)

	for _, mech := range nbiot.GroupingMechanisms() {
		row := []string{mech.String()}
		for _, size := range sizes {
			total := 0.0
			for r := 0; r < runs; r++ {
				fleet, err := nbiot.PaperCalibratedMix().Generate(devices, nbiot.NewStream(int64(100+r)))
				if err != nil {
					log.Fatal(err)
				}
				base := campaign(fleet, nbiot.MechanismUnicast, size, int64(r))
				res := campaign(fleet, mech, size, int64(r))
				total += float64(res.TotalConnected()-base.TotalConnected()) /
					float64(base.TotalConnected())
			}
			row = append(row, fmt.Sprintf("%+.2f%%", 100*total/runs))
		}
		t.AddRow(row...)
	}
	fmt.Println(t.String())
	fmt.Println("Reading the table: every mechanism's overhead falls with payload size —")
	fmt.Println("for multi-megabyte firmware images the grouping cost disappears into the")
	fmt.Println("reception time, which is the paper's argument for DA-SC as the default.")
}

func campaign(fleet []nbiot.Device, mech nbiot.Mechanism, size int64, seed int64) *nbiot.CampaignResult {
	res, err := nbiot.RunCampaign(nbiot.CampaignConfig{
		Mechanism:       mech,
		Fleet:           fleet,
		TI:              10 * nbiot.Second,
		PayloadBytes:    size,
		Seed:            seed,
		UniformCoverage: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}
