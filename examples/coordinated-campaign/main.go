// Coordinated-campaign: the fault-tolerance workflow for long campaigns —
// a supervisor that babysits shard workers, restarts crashes from their
// checkpoints, and merges a stream byte-identical to a run that never
// crashed (internal/coordinator; the CLI equivalent is `nbsim coordinate`).
//
// The fault model: a shard worker can die at any instant, leaving a torn
// final JSONL line and a stale status sidecar. The recovery contract
// stacks three guarantees the library already makes — records are written
// serially in task-index order, every record is a pure function of (seed,
// index), and ResumeCampaign truncates crash damage and positions the
// sweep to append exactly the missing bytes — so a supervisor only has to
// detect death and respawn with resume. This example runs that loop in
// one process, at toy scale, through the public facade:
//
//  1. record a single-process reference stream for the campaign;
//  2. supervise three in-process shard "workers" with CoordinateCampaign,
//     where shard 1's first attempt is rigged to crash mid-write;
//  3. after the coordinator reports every shard done (one restart on the
//     books), merge the shard files and verify the stream is
//     byte-identical to the reference.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"nbiot"
)

// worker adapts a goroutine to the CampaignWorker interface: Wait blocks
// until the goroutine finishes. Signal/Kill are no-ops because these toy
// workers only die by crashing on their own; real deployments use
// StartWorkerProcess, whose Signal and Kill reach an actual process.
type worker struct {
	done chan struct{}
	err  error
}

func (w *worker) Wait() error            { <-w.done; return w.err }
func (w *worker) Signal(os.Signal) error { return nil }
func (w *worker) Kill() error            { return nil }

var errRiggedCrash = errors.New("rigged crash")

func main() {
	o := nbiot.DefaultExperimentOptions()
	o.Runs = 20
	o.FleetSizes = []int{100, 200}

	dir, err := os.MkdirTemp("", "coordinated-campaign")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. The uninterrupted reference: one process, whole task space.
	reference := runShard(dir, o, "reference.jsonl", 0, 1, false, 0)

	// 2. Supervise three shards; shard 1's first attempt dies after two
	// records, torn line and all.
	const shards = 3
	var paths, statusPaths []string
	for idx := 0; idx < shards; idx++ {
		p := filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl", idx))
		paths = append(paths, p)
		statusPaths = append(statusPaths, nbiot.CampaignStatusPath(p))
	}
	spawn := func(shard, attempt int, resume bool) (nbiot.CampaignWorker, error) {
		crashAfter := 0
		if shard == 1 && attempt == 0 {
			crashAfter = 2
		}
		w := &worker{done: make(chan struct{})}
		go func() {
			defer close(w.done)
			defer func() {
				if r := recover(); r != nil {
					w.err = fmt.Errorf("worker panic: %v", r)
				}
			}()
			name := fmt.Sprintf("shard-%d.jsonl", shard)
			runShard(dir, o, name, shard, shards, resume, crashAfter)
		}()
		return w, nil
	}

	res, err := nbiot.CoordinateCampaign(context.Background(), nbiot.CoordinatorOptions{
		Shards:      shards,
		StatusPaths: statusPaths,
		Spawn:       spawn,
		Heartbeat:   time.Minute, // exits, not heartbeats, drive this demo
		Poll:        5 * time.Millisecond,
		Retries:     2,
		BackoffBase: 2 * time.Millisecond,
		BackoffCap:  10 * time.Millisecond,
		Seed:        1,
		Log:         func(f string, a ...any) { fmt.Printf("coordinator: "+f+"\n", a...) },
	})
	if err != nil {
		log.Fatalf("%v\n%s", err, res.Describe())
	}
	fmt.Printf("\nsupervision: %d restart(s), %d stall(s)\n%s\n", res.Restarts, res.Stalls, res.Describe())

	// 3. Merge the supervised fleet's files: byte-identical to the run
	// that never crashed.
	var merged bytes.Buffer
	if _, err := nbiot.MergeCampaignShards(&merged, paths, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged %d bytes; identical to the uninterrupted reference: %v\n",
		merged.Len(), bytes.Equal(merged.Bytes(), reference))
}

// runShard is one worker attempt's whole life, exactly what one `nbsim
// fig7 -shard i/n -jsonl -resume` process does: open (or resume) the
// record file, publish a status sidecar while sweeping, and append
// records in task-index order. crashAfter > 0 rigs the attempt to die
// after that many records written this session, leaving the torn final
// line a real kill would. Returns the finished file's bytes (nil after a
// rigged crash).
func runShard(dir string, o nbiot.ExperimentOptions, name string, idx, count int, resume bool, crashAfter int) []byte {
	path := filepath.Join(dir, name)
	m, err := nbiot.NewCampaignManifest("fig7", o, idx, count)
	if err != nil {
		log.Fatal(err)
	}
	var f *os.File
	skip := 0
	if resume {
		// ResumeCampaign truncates the torn line, removes the dead
		// session's stale status sidecar, and reports how many tasks the
		// checkpoint already holds.
		var cp nbiot.CampaignCheckpoint
		f, cp, err = nbiot.ResumeCampaign(path, m)
		if err != nil {
			log.Fatal(err)
		}
		skip = cp.Completed
		fmt.Printf("shard %d: resuming at %d/%d tasks (torn tail dropped: %v)\n",
			idx, cp.Completed, m.ShardTasks(), cp.Torn)
	} else {
		if err := m.WriteFile(nbiot.CampaignManifestPath(path)); err != nil {
			log.Fatal(err)
		}
		if f, err = os.Create(path); err != nil {
			log.Fatal(err)
		}
	}
	defer f.Close()

	tracker := nbiot.NewStatusTracker(m.Telemetry(skip), nil,
		nbiot.NewStatusFileSink(nbiot.CampaignStatusPath(path)),
		nbiot.StatusTrackerOptions{EveryTasks: 1})
	so := o
	so.ShardIndex, so.ShardCount, so.SkipTasks = idx, count, skip
	write := nbiot.CampaignRecordWriter(f)
	session := 0
	so.Record = func(rec nbiot.RunRecord) error {
		if err := write(rec); err != nil {
			return err
		}
		session++
		if crashAfter > 0 && session >= crashAfter {
			f.WriteString(`{"torn mid-wri`) // the kill lands mid-write
			return errRiggedCrash
		}
		return nil
	}
	so.Observe = func(rec nbiot.RunRecord) {
		tracker.Task(rec.Metric, rec.Value, rec.FleetSize)
	}
	tracker.Start()
	if _, err := nbiot.Fig7(so); err != nil {
		// Crash without tracker.Close: the stale, never-done sidecar stays
		// behind, exactly like a killed process.
		panic(err)
	}
	if err := tracker.Close(true); err != nil {
		log.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		log.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	return b
}
