// Quickstart: deliver one firmware image to a fleet of NB-IoT devices with
// the DA-SC grouping mechanism (the paper's recommended trade-off) and
// print what it cost.
package main

import (
	"fmt"
	"log"

	"nbiot"
)

func main() {
	// Generate a 300-device fleet with the paper-calibrated mix of dormant
	// meters, trackers and alarms. All randomness is seeded: re-running
	// reproduces the same fleet and the same campaign.
	fleet, err := nbiot.PaperCalibratedMix().Generate(300, nbiot.NewStream(1))
	if err != nil {
		log.Fatal(err)
	}

	// Run one multicast campaign: DA-SC temporarily shortens the DRX cycle
	// of devices that would miss the transmission, so a single multicast
	// covers the whole fleet.
	res, err := nbiot.RunCampaign(nbiot.CampaignConfig{
		Mechanism:       nbiot.MechanismDASC,
		Fleet:           fleet,
		TI:              10 * nbiot.Second, // inactivity timer
		PayloadBytes:    nbiot.Size1MB,     // firmware image size
		Seed:            42,
		UniformCoverage: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mechanism:               %v\n", res.Mechanism)
	fmt.Printf("devices updated:         %d\n", res.NumDevices)
	fmt.Printf("multicast transmissions: %d\n", res.NumTransmissions)
	fmt.Printf("campaign finished at:    %v\n", res.CampaignEnd)
	fmt.Printf("data airtime:            %v\n", res.ENB.DataAirtime)
	fmt.Printf("paging messages:         %d (%d bytes)\n", res.ENB.PagingMessages, res.ENB.PagingBytes)

	// Per-device energy proxy: uptime split into light sleep (paging) and
	// connected mode (random access + waiting + receiving).
	var light, conn nbiot.Ticks
	for _, d := range res.Devices {
		light += d.LightSleep()
		conn += d.Connected()
	}
	fmt.Printf("fleet light-sleep uptime: %v\n", light)
	fmt.Printf("fleet connected uptime:   %v\n", conn)
}
