// Distributed-campaign: the shard → crash → resume → merge workflow that
// turns one-shot sweeps into durable campaigns (internal/campaign).
//
// A production fig7 campaign is millions of Monte-Carlo runs — hours of
// wall-clock across several machines. This example runs the same workflow
// at toy scale, entirely through the public facade:
//
//  1. split the sweep's task-index space into three shards, each written
//     to its own JSONL record file with a manifest sidecar (in production
//     each shard is its own `nbsim fig7 -shard i/3 -jsonl ...` process);
//  2. "crash" one shard mid-write — the file ends in a torn half-line —
//     and resume it from the completed prefix;
//  3. merge the three shard files back into the single-process record
//     stream, byte-identical to a run that was never split, and rebuild
//     the exact figure table from it;
//  4. stream a P² quantile sketch over the merged records — the
//     constant-memory way to report percentiles off a record stream far
//     too long to retain.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nbiot"
)

func main() {
	o := nbiot.DefaultExperimentOptions()
	o.Runs = 30
	o.FleetSizes = []int{100, 200, 300}

	dir, err := os.MkdirTemp("", "distributed-campaign")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	runShard := func(path string, idx, count, skip int) {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		so := o
		so.ShardIndex, so.ShardCount, so.SkipTasks = idx, count, skip
		so.Record = nbiot.CampaignRecordWriter(f)
		if _, err := nbiot.Fig7(so); err != nil {
			log.Fatal(err)
		}
	}

	// 1. Three shards of the same campaign, each self-describing.
	const shards = 3
	var paths []string
	for idx := 0; idx < shards; idx++ {
		p := filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl", idx))
		paths = append(paths, p)
		m, err := nbiot.NewCampaignManifest("fig7", o, idx, shards)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.WriteFile(nbiot.CampaignManifestPath(p)); err != nil {
			log.Fatal(err)
		}
		runShard(p, idx, shards, 0)
	}
	fmt.Printf("ran %d shards of the fig7 sweep (%d tasks each way)\n", shards, o.Runs*len(o.FleetSizes))

	// 2. Crash shard 1 mid-write, then recover: scan the damaged file,
	// drop the torn tail, and resume from the completed prefix.
	intact, err := os.ReadFile(paths[1])
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(paths[1], intact[:len(intact)/2+1], 0o644); err != nil {
		log.Fatal(err)
	}
	m, err := nbiot.ReadCampaignManifest(nbiot.CampaignManifestPath(paths[1]))
	if err != nil {
		log.Fatal(err)
	}
	f, cp, err := nbiot.ResumeCampaign(paths[1], m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard 2 crashed mid-write: %d/%d tasks recovered (torn tail dropped: %v)\n",
		cp.Completed, m.ShardTasks(), cp.Torn)
	so := o
	so.ShardIndex, so.ShardCount, so.SkipTasks = 1, shards, cp.Completed
	so.Record = nbiot.CampaignRecordWriter(f)
	if _, err := nbiot.Fig7(so); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	healed, err := os.ReadFile(paths[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed shard byte-identical to its uninterrupted run: %v\n", bytes.Equal(healed, intact))

	// 3 + 4. Merge the shard set back into single-process order, folding
	// each record into the figure rebuild and a streaming P95 sketch.
	var merged bytes.Buffer
	p95 := nbiot.NewP2Quantile(0.95)
	var recs []nbiot.RunRecord
	if _, err := nbiot.MergeCampaignShards(&merged, paths, func(rec nbiot.RunRecord) error {
		p95.Add(rec.Value)
		recs = append(recs, rec)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	res, err := nbiot.Fig7FromRecords(o, func(yield func(nbiot.RunRecord) error) error {
		for _, rec := range recs {
			if err := yield(rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(res.Table().String())
	fmt.Printf("streamed P95 of DR-SC transmissions across all %d records: %.1f\n", p95.N(), p95.Value())
}
