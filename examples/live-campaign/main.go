// Live-campaign: the observability workflow for long campaigns — status
// sidecars, a tail-style fleet view, and streaming statistics that agree
// between the live run and the final merge (internal/telemetry).
//
// A production campaign is hours of wall-clock spread over shard
// processes; between launch and merge, the only signal is record files
// growing. The status protocol adds a live channel: every worker
// atomically rewrites a small `<jsonl>.status` JSON sidecar as it runs —
// progress, throughput, ETA, and per-metric count/mean/min/max plus P²
// P50/P95/P99 — and any observer folds those files into a fleet view (the
// CLI equivalent is `nbsim tail 'shard-*.jsonl.status'`). This example
// runs the whole loop in one process, at toy scale, through the public
// facade:
//
//  1. launch three shards of a fig7 campaign, each publishing status from
//     its Observe hook while writing its JSONL records;
//  2. watch them concurrently: poll the sidecars mid-flight, aggregate,
//     and print the fleet view an operator would see;
//  3. after the workers finish, take the final snapshot and check its
//     merged statistics against a full-stream summary of the merged
//     record files — exact for count/mean/min/max, within estimator
//     tolerance for the percentiles.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"nbiot"
)

func main() {
	o := nbiot.DefaultExperimentOptions()
	o.Runs = 40
	o.FleetSizes = []int{100, 200}

	dir, err := os.MkdirTemp("", "live-campaign")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Three shard workers, each publishing a status sidecar while it
	// records. In production each is its own `nbsim fig7 -shard i/3 -jsonl
	// shard-i.jsonl` process — status emission is on by default there.
	const shards = 3
	var paths, statusPaths []string
	for idx := 0; idx < shards; idx++ {
		p := filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl", idx))
		paths = append(paths, p)
		statusPaths = append(statusPaths, nbiot.CampaignStatusPath(p))
	}
	runShard := func(idx int) {
		f, err := os.Create(paths[idx])
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		m, err := nbiot.NewCampaignManifest("fig7", o, idx, shards)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.WriteFile(nbiot.CampaignManifestPath(paths[idx])); err != nil {
			log.Fatal(err)
		}
		tracker := nbiot.NewStatusTracker(m.Telemetry(0), nil,
			nbiot.NewStatusFileSink(statusPaths[idx]),
			// Publish every task so even this fast toy campaign is
			// observable mid-flight; the defaults (64 tasks / 1s) suit real
			// ones.
			nbiot.StatusTrackerOptions{EveryTasks: 1})
		so := o
		so.ShardIndex, so.ShardCount = idx, shards
		so.Record = nbiot.CampaignRecordWriter(f)
		so.Observe = func(rec nbiot.RunRecord) {
			tracker.Task(rec.Metric, rec.Value, rec.FleetSize)
		}
		tracker.Start()
		_, runErr := nbiot.Fig7(so)
		if err := tracker.Close(runErr == nil); err != nil {
			log.Fatal(err)
		}
		if runErr != nil {
			log.Fatal(runErr)
		}
	}

	var wg sync.WaitGroup
	for idx := 0; idx < shards; idx++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			runShard(idx)
		}(idx)
	}

	// 2. The observer side: poll the sidecars while the fleet runs. A
	// missing file just means that worker has not published yet.
	for polls := 0; polls < 50; polls++ {
		loaded, missing := nbiot.LoadCampaignStatuses(statusPaths, time.Now())
		snap := nbiot.AggregateCampaignStatus(loaded, missing)
		if snap.Completed > 0 && !snap.Done {
			fmt.Printf("mid-flight: %d/%d tasks, %d shard(s) publishing, %d pending\n",
				snap.Completed, snap.TotalTasks, len(snap.Shards), len(snap.Missing))
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()

	// 3. Final snapshot over the finished fleet.
	loaded, missing := nbiot.LoadCampaignStatuses(statusPaths, time.Now())
	snap := nbiot.AggregateCampaignStatus(loaded, missing)
	fmt.Printf("final: %d/%d tasks, done=%v\n", snap.Completed, snap.TotalTasks, snap.Done)

	// Cross-check the snapshot's merged statistics against a full-stream
	// summary of the merged records — what `nbsim merge` prints.
	full := nbiot.NewCampaignMetricSet()
	var sink bytes.Buffer
	if _, err := nbiot.MergeCampaignShards(&sink, paths, func(rec nbiot.RunRecord) error {
		full.Add(rec.Metric, rec.Value)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(full.Table().String())
	agg, exact := snap.Metrics[0], full.Stats()[0]
	fmt.Printf("snapshot vs merge: count %d/%d, mean %.1f/%.1f (exact), P95 %.1f/%.1f (estimator tolerance)\n",
		agg.Count, exact.Count, agg.Mean, exact.Mean, agg.P95, exact.P95)
}
