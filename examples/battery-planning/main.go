// Battery-planning: turn simulated campaign energy into the number the
// paper's introduction actually cares about — battery life. NB-IoT devices
// must survive "more than 10 years on a single battery" (Sec. I); this
// example measures each mechanism's per-device campaign cost on the
// simulator, converts it to joules, and asks how many firmware updates per
// year a dormant meter can afford under each mechanism while keeping the
// 10-year target.
package main

import (
	"fmt"
	"log"

	"nbiot"
	"nbiot/internal/report"
)

func main() {
	const devices = 200
	fleet, err := nbiot.PaperCalibratedMix().Generate(devices, nbiot.NewStream(31))
	if err != nil {
		log.Fatal(err)
	}
	profile := nbiot.DefaultPowerProfile()

	// A dormant metering device: deepest eDRX, daily report.
	cfg := nbiot.BatteryConfig{
		CapacityJoules:     nbiot.DefaultBatteryCapacityJoules,
		Profile:            profile,
		POPeriod:           nbiot.Cycle10485s.Ticks(),
		POMonitor:          2 * nbiot.Millisecond,
		ReportPeriod:       24 * nbiot.Hour,
		ReportEnergyJoules: 0.5,
	}
	baseline, err := cfg.BaselineLifeYears()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dormant meter, no updates ever: %.1f years of battery\n\n", baseline)

	t := report.NewTable(
		"Monthly 1MB updates: battery life by delivery mechanism (dormant meter)",
		"mechanism", "campaign J/device", "life @ 12 updates/yr", "max updates/yr for 10y")

	// Unicast baseline for relative energy.
	for _, mech := range nbiot.Mechanisms() {
		res, err := nbiot.RunCampaign(nbiot.CampaignConfig{
			Mechanism:       mech,
			Fleet:           fleet,
			TI:              10 * nbiot.Second,
			PayloadBytes:    nbiot.Size1MB,
			Seed:            31,
			UniformCoverage: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Mean per-device campaign energy: extra light sleep + connected.
		var joules float64
		for _, d := range res.Devices {
			joules += nbiot.CampaignJoules(profile, d.Campaign.LightSleep, d.Connected())
		}
		joules /= float64(len(res.Devices))

		life, err := cfg.LifeYears(joules, 12)
		if err != nil {
			log.Fatal(err)
		}
		maxRate, err := cfg.MaxUpdatesPerYear(joules, 10)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(
			mech.String(),
			fmt.Sprintf("%.1f", joules),
			fmt.Sprintf("%.1f years", life),
			fmt.Sprintf("%.0f", maxRate),
		)
	}
	fmt.Println(t.String())
	fmt.Println("The campaign cost is dominated by receiving the image itself, which is why")
	fmt.Println("the paper's grouping overheads barely move the battery math — the real")
	fmt.Println("damage would come from SC-PTM's standing monitoring between updates.")
}
