// Coverage-planning: an extension beyond the paper — serving a fleet that
// spans all three NB-IoT coverage-enhancement classes (CE0 normal, CE1
// deep, CE2 extreme).
//
// The paper models one service class, but a real multicast bearer must run
// at its group's WORST class (Sec. II-A), so a basement meter in CE2 drags
// every rooftop sensor in CE0 down to ~1.6 kbps. This example compares the
// paper-faithful shared bearer against per-class groups (SplitByCoverage)
// and also checks the library's analytical models against the simulation.
package main

import (
	"fmt"
	"log"

	"nbiot"
	"nbiot/internal/report"
)

func main() {
	const devices = 150
	fleet, err := nbiot.EricssonCityMix().Generate(devices, nbiot.NewStream(11))
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable(
		"DA-SC with heterogeneous coverage: shared bearer vs per-class groups",
		"strategy", "tx", "data airtime", "mean connected/device")
	for _, split := range []bool{false, true} {
		res, err := nbiot.RunCampaign(nbiot.CampaignConfig{
			Mechanism:       nbiot.MechanismDASC,
			Fleet:           fleet,
			TI:              10 * nbiot.Second,
			PayloadBytes:    nbiot.Size1MB,
			Seed:            11,
			SplitByCoverage: split,
		})
		if err != nil {
			log.Fatal(err)
		}
		name := "shared bearer (paper model)"
		if split {
			name = "per-class groups (extension)"
		}
		t.AddRow(name,
			fmt.Sprintf("%d", res.NumTransmissions),
			res.ENB.DataAirtime.String(),
			(res.TotalConnected() / nbiot.Ticks(res.NumDevices)).String())
	}
	fmt.Println(t.String())
	fmt.Println("The trade: splitting multiplies transmissions (and total airtime grows,")
	fmt.Println("since the CE2 group still needs its slow transmission) but normal-coverage")
	fmt.Println("devices stop paying deep-coverage reception times, so the mean connected")
	fmt.Println("uptime per device — the battery cost — drops sharply.")
	fmt.Println()

	// Analytical cross-check: predicted vs planner behaviour.
	fmt.Println("Analytical models vs this fleet:")
	fmt.Printf("  expected DR-SC transmissions: %.1f\n",
		nbiot.ExpectedDRSCTransmissions(fleet, 10*nbiot.Second))
	fmt.Printf("  P(adjustment) for a 163.84s cycle: %.2f\n",
		nbiot.AdjustedFraction(nbiot.Cycle163s, 10*nbiot.Second))
	fmt.Printf("  expected extra wake-ups for a 2621.44s cycle: %.1f\n",
		nbiot.ExpectedExtraWakeups(nbiot.Cycle2621s, 10*nbiot.Second))
}
