// DRX-planner: use the lower-level planning API directly — hand-built DRX
// configurations, TS 36.304 paging schedules, and a DR-SC plan you can
// inspect window by window.
//
// This is the paper's Fig. 2/Fig. 4 scenario in code: devices with
// different (e)DRX cycles and offsets, and the greedy set cover choosing
// the multicast transmission windows that cover them with the fewest
// transmissions.
package main

import (
	"fmt"
	"log"

	"nbiot"
)

func main() {
	// Hand-pick a small heterogeneous fleet: two trackers on a 20.48 s
	// eDRX, one alarm on a 2.56 s DRX, and two dormant meters at the
	// maximum 174.8-minute eDRX. The UE identity determines each device's
	// paging frame and occasion per TS 36.304.
	configs := []nbiot.DRXConfig{
		{UEID: 101, Cycle: nbiot.Cycle20s},
		{UEID: 2040, Cycle: nbiot.Cycle20s},
		{UEID: 7, Cycle: nbiot.Cycle2560ms},
		{UEID: 900, Cycle: nbiot.Cycle10485s},
		{UEID: 3501, Cycle: nbiot.Cycle10485s},
	}
	devices := make([]nbiot.PlannerDevice, len(configs))
	for i, cfg := range configs {
		sched, err := nbiot.NewPagingSchedule(cfg)
		if err != nil {
			log.Fatal(err)
		}
		devices[i] = nbiot.PlannerDevice{ID: i, UEID: cfg.UEID, Schedule: sched, Coverage: nbiot.CE0}
		fmt.Printf("device %d: cycle %-12v first paging occasion at %v\n",
			i, cfg.Cycle, sched.NextAtOrAfter(0))
	}

	// Plan a DR-SC delivery: respect every cycle, minimise transmissions
	// with the greedy set cover over TI-length windows.
	planner, err := nbiot.NewPlanner(nbiot.MechanismDRSC)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := planner.Plan(devices, nbiot.PlanParams{
		Now: 0,
		TI:  10 * nbiot.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nDR-SC plan: %d multicast transmissions for %d devices\n",
		plan.NumTransmissions(), len(devices))
	for i, tx := range plan.Transmissions {
		fmt.Printf("  tx %d at %v covers devices %v\n", i, tx.At, tx.Devices)
	}
	for _, pg := range plan.Pages {
		fmt.Printf("  page device %d at %v (for tx %d)\n", pg.Device, pg.At, pg.TxIndex)
	}

	// Contrast with DA-SC: one transmission, but the dormant meters get
	// their DRX temporarily shortened.
	dasc, err := nbiot.NewPlanner(nbiot.MechanismDASC)
	if err != nil {
		log.Fatal(err)
	}
	plan2, err := dasc.Plan(devices, nbiot.PlanParams{Now: 0, TI: 10 * nbiot.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDA-SC plan: %d transmission at %v, %d DRX adjustments\n",
		plan2.NumTransmissions(), plan2.Transmissions[0].At, len(plan2.Adjustments))
	for _, adj := range plan2.Adjustments {
		fmt.Printf("  device %d: reconfigure to %v at its occasion %v, paged again at %v (%d extra wake-ups)\n",
			adj.Device, adj.NewCycle, adj.AtPO, adj.PagedAt, len(adj.ExtraPOs))
	}
}
