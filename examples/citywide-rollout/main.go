// Citywide-rollout: push one firmware image to a fleet spread across many
// cells — the full pipeline of the on-demand multicast scheme the paper
// builds on (its ref [3]): the content provider hands the operator the
// image and the device list, the coordination entity fans both out to
// every eNB with attached targets, and each cell runs its own grouping
// campaign. Cells simulate concurrently.
package main

import (
	"fmt"
	"log"

	"nbiot"
	"nbiot/internal/report"
)

func main() {
	const (
		cells   = 8
		devices = 1200
	)
	net, err := nbiot.PopulateNetwork(cells, devices, nbiot.PaperCalibratedMix(), nbiot.NewStream(21))
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable(
		fmt.Sprintf("Citywide rollout: %d devices across %d cells, 1MB image", devices, cells),
		"mechanism", "total tx", "tx/device", "rollout end", "fleet connected uptime")
	for _, mech := range nbiot.Mechanisms() {
		rollout, err := net.Distribute(nbiot.RolloutConfig{
			Mechanism:       mech,
			TI:              10 * nbiot.Second,
			PayloadBytes:    nbiot.Size1MB,
			Seed:            21,
			UniformCoverage: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(
			mech.String(),
			fmt.Sprintf("%d", rollout.TotalTransmissions),
			fmt.Sprintf("%.2f", float64(rollout.TotalTransmissions)/float64(rollout.TotalDevices)),
			rollout.End.String(),
			rollout.TotalConnected().String(),
		)
	}
	fmt.Println(t.String())
	fmt.Println("DA-SC and DR-SI need exactly one transmission per cell; DR-SC's count")
	fmt.Println("tracks the per-cell set cover; unicast transmits once per device.")
}
