// Citywide-rollout: push firmware to a heterogeneous city — the full
// pipeline of the on-demand multicast scheme the paper builds on (its
// ref [3]): the content provider hands the operator the image and the
// device list, the coordination entity fans both out to every eNB with
// attached targets, and each cell runs its own grouping campaign.
//
// Unlike a single homogeneous network, the city is declared as a
// ScenarioSpec: profile groups of cells with their own coverage mixes,
// mechanisms, and device budgets, plus churn waves — devices detach,
// migrate between cells, and new ones attach between the initial image
// and the follow-up patch. The same spec, saved as JSON, drives
// `nbsim rollout -spec` with sharding, resume, and coordinated fleets
// (see nbsim's package comment); this example runs it in-process.
package main

import (
	"fmt"
	"log"

	"nbiot"
	"nbiot/internal/report"
)

func main() {
	spec := nbiot.ScenarioSpec{
		Name:         "example-city",
		TotalDevices: 1200,
		Mechanism:    "DR-SC",
		Profiles: []nbiot.CellProfile{
			// Dense urban cells split the weighted budget 2:1 with suburban
			// ones and see the Ericsson city traffic composition.
			{Name: "urban", Cells: 4, Weight: 2, Mix: "ericsson-city", UniformCoverage: true},
			// Suburban cells run a more patient inactivity timer.
			{Name: "suburban", Cells: 3, Weight: 1, TIMillis: 20000, UniformCoverage: true},
			// Deep-indoor metering cells: a fixed population, mostly CE2
			// coverage, synchronised with DA-SC instead of the default.
			{Name: "indoor", Cells: 2, DevicesPerCell: 40, Mechanism: "DA-SC",
				Coverage: []float64{0.1, 0.3, 0.6}},
		},
		Waves: []nbiot.RolloutWave{
			{Name: "image"}, // the initial 1MB-class rollout (default payload)
			// A week later, a small patch: some devices are gone, some moved
			// to the next cell over, and new activations joined.
			{Name: "patch", PayloadBytes: 10 * 1024, Detach: 0.05, Migrate: 0.10, Attach: 0.08},
		},
	}

	sc, err := nbiot.NewScenario(spec, 21)
	if err != nil {
		log.Fatal(err)
	}
	rollout, err := sc.Run(nbiot.ScenarioRunConfig{})
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable(
		fmt.Sprintf("City rollout %q: %d cells, %d profiles, %d waves",
			rollout.Name, sc.NumSites(), len(spec.Profiles), len(spec.Waves)),
		"wave", "devices", "active cells", "total tx", "tx/device", "wave end")
	for _, w := range rollout.Waves {
		name := spec.Waves[w.Wave].Name
		t.AddRow(
			fmt.Sprintf("%d (%s)", w.Wave, name),
			fmt.Sprintf("%d", w.TotalDevices),
			fmt.Sprintf("%d", w.ActiveCells),
			fmt.Sprintf("%d", w.TotalTransmissions),
			fmt.Sprintf("%.2f", float64(w.TotalTransmissions)/float64(w.TotalDevices)),
			w.End.String(),
		)
	}
	fmt.Println(t.String())

	// The same scenario as a registered sweep: one task per (wave, cell)
	// on the shared engine, so -shard/-resume/merge/coordinate apply when
	// run through nbsim. The per-wave table is rebuilt from the identical
	// record stream a distributed campaign would produce.
	res, err := nbiot.RunRollout(nbiot.DefaultExperimentOptions(), spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table().String())
	fmt.Println("Urban/suburban cells cover their fleets with DR-SC set covers; the")
	fmt.Println("indoor metering cells synchronise everyone with a single DA-SC")
	fmt.Println("transmission each. The patch wave re-plans against the churned fleet.")
}
