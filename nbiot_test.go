package nbiot_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"nbiot"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	fleet, err := nbiot.PaperCalibratedMix().Generate(60, nbiot.NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nbiot.RunCampaign(nbiot.CampaignConfig{
		Mechanism:       nbiot.MechanismDASC,
		Fleet:           fleet,
		TI:              10 * nbiot.Second,
		PayloadBytes:    nbiot.Size100KB,
		Seed:            42,
		UniformCoverage: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTransmissions != 1 {
		t.Errorf("DA-SC transmissions = %d, want 1", res.NumTransmissions)
	}
	if res.NumDevices != 60 {
		t.Errorf("devices = %d", res.NumDevices)
	}
}

func TestFacadeMechanismLists(t *testing.T) {
	if len(nbiot.Mechanisms()) != 4 {
		t.Error("expected 4 mechanisms")
	}
	if len(nbiot.GroupingMechanisms()) != 3 {
		t.Error("expected 3 grouping mechanisms")
	}
	if nbiot.MechanismDRSI.StandardsCompliant() {
		t.Error("DR-SI is not standards compliant")
	}
}

func TestFacadePlannerFlow(t *testing.T) {
	sched, err := nbiot.NewPagingSchedule(nbiot.DRXConfig{UEID: 9, Cycle: nbiot.Cycle20s})
	if err != nil {
		t.Fatal(err)
	}
	devices := []nbiot.PlannerDevice{
		{ID: 0, UEID: 9, Schedule: sched, Coverage: nbiot.CE0},
	}
	p, err := nbiot.NewPlanner(nbiot.MechanismUnicast)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan(devices, nbiot.PlanParams{Now: 0, TI: 10 * nbiot.Second})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumTransmissions() != 1 {
		t.Errorf("transmissions = %d", plan.NumTransmissions())
	}
}

func TestFacadeMixesAndLadder(t *testing.T) {
	if len(nbiot.CycleLadder()) != 14 {
		t.Errorf("ladder size = %d, want 14", len(nbiot.CycleLadder()))
	}
	mixes := nbiot.Mixes()
	for _, name := range []string{"ericsson-city", "paper-calibrated", "short-heavy", "long-heavy"} {
		if _, ok := mixes[name]; !ok {
			t.Errorf("mix %q missing", name)
		}
	}
	if nbiot.UniformEDRXMix().Name == "" {
		t.Error("uniform mix unnamed")
	}
}

func TestFacadeFleetConversion(t *testing.T) {
	fleet, err := nbiot.EricssonCityMix().Generate(10, nbiot.NewStream(3))
	if err != nil {
		t.Fatal(err)
	}
	devices, err := nbiot.FleetFromTraffic(fleet)
	if err != nil {
		t.Fatal(err)
	}
	if len(devices) != 10 {
		t.Errorf("converted %d devices", len(devices))
	}
}

func TestFacadeNetworkRollout(t *testing.T) {
	net, err := nbiot.PopulateNetwork(2, 40, nbiot.PaperCalibratedMix(), nbiot.NewStream(5))
	if err != nil {
		t.Fatal(err)
	}
	rollout, err := net.Distribute(nbiot.RolloutConfig{
		Mechanism:       nbiot.MechanismDASC,
		TI:              10 * nbiot.Second,
		PayloadBytes:    nbiot.Size100KB,
		Seed:            5,
		UniformCoverage: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rollout.TotalTransmissions != 2 {
		t.Errorf("2-cell DA-SC rollout used %d transmissions", rollout.TotalTransmissions)
	}
	if rollout.TotalDevices != 40 {
		t.Errorf("served %d devices", rollout.TotalDevices)
	}
}

func TestFacadeBatteryProjection(t *testing.T) {
	cfg := nbiot.BatteryConfig{
		CapacityJoules:     nbiot.DefaultBatteryCapacityJoules,
		Profile:            nbiot.DefaultPowerProfile(),
		POPeriod:           nbiot.Cycle10485s.Ticks(),
		POMonitor:          2 * nbiot.Millisecond,
		ReportPeriod:       24 * nbiot.Hour,
		ReportEnergyJoules: 0.5,
	}
	life, err := cfg.BaselineLifeYears()
	if err != nil {
		t.Fatal(err)
	}
	if life < 10 {
		t.Errorf("baseline life %.1f < 10 years", life)
	}
	if j := nbiot.CampaignJoules(nbiot.DefaultPowerProfile(), 0, 60*nbiot.Second); j <= 0 {
		t.Errorf("CampaignJoules = %v", j)
	}
}

func TestFacadeTraceIntegration(t *testing.T) {
	fleet, err := nbiot.PaperCalibratedMix().Generate(15, nbiot.NewStream(9))
	if err != nil {
		t.Fatal(err)
	}
	rec := nbiot.NewTraceRecorder(500)
	if _, err := nbiot.RunCampaign(nbiot.CampaignConfig{
		Mechanism:       nbiot.MechanismDRSC,
		Fleet:           fleet,
		TI:              10 * nbiot.Second,
		PayloadBytes:    nbiot.Size100KB,
		Seed:            9,
		UniformCoverage: true,
		Trace:           rec,
	}); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Error("facade trace recorder captured nothing")
	}
}

func TestFacadeSCPTM(t *testing.T) {
	fleet, err := nbiot.PaperCalibratedMix().Generate(20, nbiot.NewStream(11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nbiot.RunCampaign(nbiot.CampaignConfig{
		Mechanism:       nbiot.MechanismSCPTM,
		Fleet:           fleet,
		TI:              10 * nbiot.Second,
		PayloadBytes:    nbiot.Size100KB,
		Seed:            11,
		UniformCoverage: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTransmissions != 1 || res.MAC.Procedures != 0 {
		t.Errorf("SC-PTM via facade: %d tx, %d RA procedures", res.NumTransmissions, res.MAC.Procedures)
	}
}

func TestFacadeExperimentSmoke(t *testing.T) {
	o := nbiot.DefaultExperimentOptions()
	o.Runs = 1
	o.Devices = 40
	o.FleetSizes = []int{40}
	res, err := nbiot.Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transmissions.Points) != 1 {
		t.Errorf("points = %d", len(res.Transmissions.Points))
	}
}

// TestFacadeDistributedCampaign drives the shard → crash → resume → merge
// workflow purely through the facade.
func TestFacadeDistributedCampaign(t *testing.T) {
	o := nbiot.DefaultExperimentOptions()
	o.Runs = 2
	o.FleetSizes = []int{40, 80}
	o.Workers = 2

	dir := t.TempDir()
	runShard := func(path string, idx, count, skip int) {
		t.Helper()
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		so := o
		so.ShardIndex, so.ShardCount, so.SkipTasks = idx, count, skip
		so.Record = nbiot.CampaignRecordWriter(f)
		if _, err := nbiot.Fig7(so); err != nil {
			t.Fatal(err)
		}
	}

	// Reference: unsharded run.
	single := filepath.Join(dir, "single.jsonl")
	runShard(single, 0, 1, 0)
	ref, err := os.ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}

	// Two shards, with manifests.
	const shards = 2
	var paths []string
	for idx := 0; idx < shards; idx++ {
		p := filepath.Join(dir, fmt.Sprintf("s%d.jsonl", idx))
		paths = append(paths, p)
		m, err := nbiot.NewCampaignManifest("fig7", o, idx, shards)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.WriteFile(nbiot.CampaignManifestPath(p)); err != nil {
			t.Fatal(err)
		}
		runShard(p, idx, shards, 0)
	}

	// Crash shard 0 (torn tail) and resume it via the facade.
	whole, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[0], whole[:len(whole)/2+1], 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := nbiot.ReadCampaignManifest(nbiot.CampaignManifestPath(paths[0]))
	if err != nil {
		t.Fatal(err)
	}
	f, cp, err := nbiot.ResumeCampaign(paths[0], m)
	if err != nil {
		t.Fatal(err)
	}
	so := o
	so.ShardIndex, so.ShardCount, so.SkipTasks = 0, shards, cp.Completed
	so.Record = nbiot.CampaignRecordWriter(f)
	if _, err := nbiot.Fig7(so); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	healed, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healed, whole) {
		t.Error("resumed shard diverges from its uninterrupted run")
	}

	// Merge and rebuild; stream P95 off the merged records as a consumer.
	var merged bytes.Buffer
	p95 := nbiot.NewP2Quantile(0.95)
	var recs []nbiot.RunRecord
	if _, err := nbiot.MergeCampaignShards(&merged, paths, func(rec nbiot.RunRecord) error {
		p95.Add(rec.Value)
		recs = append(recs, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), ref) {
		t.Error("merged stream diverges from the single-process run")
	}
	if p95.N() != len(recs) || len(recs) == 0 {
		t.Fatalf("consumer saw %d records (P² n=%d)", len(recs), p95.N())
	}
	direct, err := nbiot.Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := nbiot.Fig7FromRecords(o, func(yield func(nbiot.RunRecord) error) error {
		for _, rec := range recs {
			if err := yield(rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Table().String() != direct.Table().String() {
		t.Error("rebuilt table diverges from the direct run")
	}
}
