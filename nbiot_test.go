package nbiot_test

import (
	"testing"

	"nbiot"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	fleet, err := nbiot.PaperCalibratedMix().Generate(60, nbiot.NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nbiot.RunCampaign(nbiot.CampaignConfig{
		Mechanism:       nbiot.MechanismDASC,
		Fleet:           fleet,
		TI:              10 * nbiot.Second,
		PayloadBytes:    nbiot.Size100KB,
		Seed:            42,
		UniformCoverage: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTransmissions != 1 {
		t.Errorf("DA-SC transmissions = %d, want 1", res.NumTransmissions)
	}
	if res.NumDevices != 60 {
		t.Errorf("devices = %d", res.NumDevices)
	}
}

func TestFacadeMechanismLists(t *testing.T) {
	if len(nbiot.Mechanisms()) != 4 {
		t.Error("expected 4 mechanisms")
	}
	if len(nbiot.GroupingMechanisms()) != 3 {
		t.Error("expected 3 grouping mechanisms")
	}
	if nbiot.MechanismDRSI.StandardsCompliant() {
		t.Error("DR-SI is not standards compliant")
	}
}

func TestFacadePlannerFlow(t *testing.T) {
	sched, err := nbiot.NewPagingSchedule(nbiot.DRXConfig{UEID: 9, Cycle: nbiot.Cycle20s})
	if err != nil {
		t.Fatal(err)
	}
	devices := []nbiot.PlannerDevice{
		{ID: 0, UEID: 9, Schedule: sched, Coverage: nbiot.CE0},
	}
	p, err := nbiot.NewPlanner(nbiot.MechanismUnicast)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan(devices, nbiot.PlanParams{Now: 0, TI: 10 * nbiot.Second})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumTransmissions() != 1 {
		t.Errorf("transmissions = %d", plan.NumTransmissions())
	}
}

func TestFacadeMixesAndLadder(t *testing.T) {
	if len(nbiot.CycleLadder()) != 14 {
		t.Errorf("ladder size = %d, want 14", len(nbiot.CycleLadder()))
	}
	mixes := nbiot.Mixes()
	for _, name := range []string{"ericsson-city", "paper-calibrated", "short-heavy", "long-heavy"} {
		if _, ok := mixes[name]; !ok {
			t.Errorf("mix %q missing", name)
		}
	}
	if nbiot.UniformEDRXMix().Name == "" {
		t.Error("uniform mix unnamed")
	}
}

func TestFacadeFleetConversion(t *testing.T) {
	fleet, err := nbiot.EricssonCityMix().Generate(10, nbiot.NewStream(3))
	if err != nil {
		t.Fatal(err)
	}
	devices, err := nbiot.FleetFromTraffic(fleet)
	if err != nil {
		t.Fatal(err)
	}
	if len(devices) != 10 {
		t.Errorf("converted %d devices", len(devices))
	}
}

func TestFacadeNetworkRollout(t *testing.T) {
	net, err := nbiot.PopulateNetwork(2, 40, nbiot.PaperCalibratedMix(), nbiot.NewStream(5))
	if err != nil {
		t.Fatal(err)
	}
	rollout, err := net.Distribute(nbiot.RolloutConfig{
		Mechanism:       nbiot.MechanismDASC,
		TI:              10 * nbiot.Second,
		PayloadBytes:    nbiot.Size100KB,
		Seed:            5,
		UniformCoverage: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rollout.TotalTransmissions != 2 {
		t.Errorf("2-cell DA-SC rollout used %d transmissions", rollout.TotalTransmissions)
	}
	if rollout.TotalDevices != 40 {
		t.Errorf("served %d devices", rollout.TotalDevices)
	}
}

func TestFacadeBatteryProjection(t *testing.T) {
	cfg := nbiot.BatteryConfig{
		CapacityJoules:     nbiot.DefaultBatteryCapacityJoules,
		Profile:            nbiot.DefaultPowerProfile(),
		POPeriod:           nbiot.Cycle10485s.Ticks(),
		POMonitor:          2 * nbiot.Millisecond,
		ReportPeriod:       24 * nbiot.Hour,
		ReportEnergyJoules: 0.5,
	}
	life, err := cfg.BaselineLifeYears()
	if err != nil {
		t.Fatal(err)
	}
	if life < 10 {
		t.Errorf("baseline life %.1f < 10 years", life)
	}
	if j := nbiot.CampaignJoules(nbiot.DefaultPowerProfile(), 0, 60*nbiot.Second); j <= 0 {
		t.Errorf("CampaignJoules = %v", j)
	}
}

func TestFacadeTraceIntegration(t *testing.T) {
	fleet, err := nbiot.PaperCalibratedMix().Generate(15, nbiot.NewStream(9))
	if err != nil {
		t.Fatal(err)
	}
	rec := nbiot.NewTraceRecorder(500)
	if _, err := nbiot.RunCampaign(nbiot.CampaignConfig{
		Mechanism:       nbiot.MechanismDRSC,
		Fleet:           fleet,
		TI:              10 * nbiot.Second,
		PayloadBytes:    nbiot.Size100KB,
		Seed:            9,
		UniformCoverage: true,
		Trace:           rec,
	}); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Error("facade trace recorder captured nothing")
	}
}

func TestFacadeSCPTM(t *testing.T) {
	fleet, err := nbiot.PaperCalibratedMix().Generate(20, nbiot.NewStream(11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nbiot.RunCampaign(nbiot.CampaignConfig{
		Mechanism:       nbiot.MechanismSCPTM,
		Fleet:           fleet,
		TI:              10 * nbiot.Second,
		PayloadBytes:    nbiot.Size100KB,
		Seed:            11,
		UniformCoverage: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTransmissions != 1 || res.MAC.Procedures != 0 {
		t.Errorf("SC-PTM via facade: %d tx, %d RA procedures", res.NumTransmissions, res.MAC.Procedures)
	}
}

func TestFacadeExperimentSmoke(t *testing.T) {
	o := nbiot.DefaultExperimentOptions()
	o.Runs = 1
	o.Devices = 40
	o.FleetSizes = []int{40}
	res, err := nbiot.Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transmissions.Points) != 1 {
		t.Errorf("points = %d", len(res.Transmissions.Points))
	}
}
