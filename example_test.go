package nbiot_test

import (
	"fmt"

	"nbiot"
)

// ExampleRunCampaign delivers one firmware image with DA-SC: the whole
// fleet is synchronised onto a single multicast transmission.
func ExampleRunCampaign() {
	fleet, err := nbiot.PaperCalibratedMix().Generate(100, nbiot.NewStream(1))
	if err != nil {
		panic(err)
	}
	res, err := nbiot.RunCampaign(nbiot.CampaignConfig{
		Mechanism:       nbiot.MechanismDASC,
		Fleet:           fleet,
		TI:              10 * nbiot.Second,
		PayloadBytes:    nbiot.Size100KB,
		Seed:            42,
		UniformCoverage: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("transmissions:", res.NumTransmissions)
	fmt.Println("devices:", res.NumDevices)
	// Output:
	// transmissions: 1
	// devices: 100
}

// ExampleNewPagingSchedule derives a device's paging occasions per
// TS 36.304 from its identity and eDRX cycle.
func ExampleNewPagingSchedule() {
	sched, err := nbiot.NewPagingSchedule(nbiot.DRXConfig{
		UEID:  1234,
		Cycle: nbiot.Cycle20s,
	})
	if err != nil {
		panic(err)
	}
	first := sched.NextAtOrAfter(0)
	second := sched.NextAfter(first)
	fmt.Println("period:", second-first)
	// Output:
	// period: 20.480s
}

// ExampleNewPlanner plans a DR-SC delivery directly and inspects the
// transmission schedule.
func ExampleNewPlanner() {
	var devices []nbiot.PlannerDevice
	cycles := []nbiot.Cycle{nbiot.Cycle20s, nbiot.Cycle10485s, nbiot.Cycle10485s}
	for i, ueid := range []uint32{11, 227, 3091} {
		sched, err := nbiot.NewPagingSchedule(nbiot.DRXConfig{UEID: ueid, Cycle: cycles[i]})
		if err != nil {
			panic(err)
		}
		devices = append(devices, nbiot.PlannerDevice{
			ID: i, UEID: ueid, Schedule: sched, Coverage: nbiot.CE0,
		})
	}
	planner, err := nbiot.NewPlanner(nbiot.MechanismDRSC)
	if err != nil {
		panic(err)
	}
	plan, err := planner.Plan(devices, nbiot.PlanParams{Now: 0, TI: 10 * nbiot.Second})
	if err != nil {
		panic(err)
	}
	fmt.Println("transmissions:", plan.NumTransmissions())
	// Output:
	// transmissions: 2
}

// ExampleMechanism_StandardsCompliant shows which mechanisms work without
// protocol changes.
func ExampleMechanism_StandardsCompliant() {
	for _, m := range nbiot.GroupingMechanisms() {
		fmt.Printf("%s: %v\n", m, m.StandardsCompliant())
	}
	// Output:
	// DR-SC: true
	// DA-SC: true
	// DR-SI: false
}

// ExampleAdjustedFraction computes how likely a dormant meter is to need a
// DA-SC reconfiguration.
func ExampleAdjustedFraction() {
	p := nbiot.AdjustedFraction(nbiot.Cycle10485s, 10*nbiot.Second)
	fmt.Printf("%.4f\n", p)
	// Output:
	// 0.9990
}
