// Benchmarks regenerating every result figure of the paper plus the
// DESIGN.md ablations. Each benchmark iteration runs a reduced-scale but
// shape-preserving version of the corresponding experiment (fewer runs per
// point than the paper's 100 so `go test -bench=.` terminates in minutes;
// the full-scale numbers live in EXPERIMENTS.md and come from cmd/nbsim).
// Custom metrics report the experiment's headline quantity alongside the
// usual ns/op.
package nbiot_test

import (
	"fmt"
	"runtime"
	"testing"

	"nbiot"
	"nbiot/internal/core"
	"nbiot/internal/experiment"
	"nbiot/internal/multicast"
	"nbiot/internal/rng"
	"nbiot/internal/simtime"
	"nbiot/internal/traffic"
)

// benchOptions returns reduced-scale experiment options; shape assertions
// for these scales live in internal/experiment's tests.
func benchOptions() experiment.Options {
	o := experiment.DefaultOptions()
	o.Runs = 3
	o.Devices = 200
	o.FleetSizes = []int{100, 400, 1000}
	return o
}

// BenchmarkFig6aLightSleepUptime regenerates Fig. 6(a): relative
// light-sleep uptime increase per grouping mechanism.
func BenchmarkFig6aLightSleepUptime(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig6a(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Increase[core.MechanismDASC].Mean*100, "DA-SC-%")
		b.ReportMetric(res.Increase[core.MechanismDRSI].Mean*100, "DR-SI-%")
	}
}

// BenchmarkFig6bConnectedUptime regenerates Fig. 6(b): relative
// connected-mode uptime increase per mechanism × payload size.
func BenchmarkFig6bConnectedUptime(b *testing.B) {
	o := benchOptions()
	o.Runs = 2
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig6b(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Increase[core.MechanismDASC][multicast.Size100KB].Mean*100, "DASC-100KB-%")
		b.ReportMetric(res.Increase[core.MechanismDASC][multicast.Size10MB].Mean*100, "DASC-10MB-%")
	}
}

// BenchmarkFig7Transmissions regenerates Fig. 7: DR-SC multicast
// transmission count vs fleet size.
func BenchmarkFig7Transmissions(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig7(o)
		if err != nil {
			b.Fatal(err)
		}
		first := res.Ratio.Points[0].Y.Mean
		last := res.Ratio.Points[len(res.Ratio.Points)-1].Y.Mean
		b.ReportMetric(first*100, "tx/dev-N100-%")
		b.ReportMetric(last*100, "tx/dev-N1000-%")
	}
}

// BenchmarkFig7Sweep tracks the campaign-execution engine's parallel
// speedup: the same Fig. 7 sweep once serially (workers=1) and once on the
// bounded pool at NumCPU workers. Results are bit-identical across the two
// (asserted by internal/experiment's determinism tests); only wall-clock
// may differ, so sweep/op is the trajectory metric to watch.
func BenchmarkFig7Sweep(b *testing.B) {
	o := benchOptions()
	o.Runs = 8
	o.FleetSizes = []int{100, 400, 700, 1000}
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 1 {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			oi := o
			oi.Workers = workers
			for i := 0; i < b.N; i++ {
				res, err := experiment.Fig7(oi)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Ratio.Points[0].Y.Mean*100, "tx/dev-N100-%")
			}
		})
	}
}

// BenchmarkAblationGreedyVsExact regenerates A1: greedy cover quality
// against the exact optimum on small instances.
func BenchmarkAblationGreedyVsExact(b *testing.B) {
	o := benchOptions()
	o.Runs = 50
	for i := 0; i < b.N; i++ {
		res, err := experiment.GreedyVsExact(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ratio.Mean, "greedy/opt")
	}
}

// BenchmarkAblationTISweep regenerates A2: DR-SC sensitivity to the
// inactivity timer.
func BenchmarkAblationTISweep(b *testing.B) {
	o := benchOptions()
	o.FleetSizes = []int{300}
	for i := 0; i < b.N; i++ {
		res, err := experiment.TISweep(o, []simtime.Ticks{
			10 * simtime.Second, 30 * simtime.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Series[0].Points[0].Y.Mean*100, "TI10-%")
		b.ReportMetric(res.Series[1].Points[0].Y.Mean*100, "TI30-%")
	}
}

// BenchmarkAblationMixSweep regenerates A3: DR-SC sensitivity to the fleet
// composition.
func BenchmarkAblationMixSweep(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiment.MixSweep(o, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ratio[traffic.LongHeavyMix().Name].Mean*100, "long-heavy-%")
	}
}

// BenchmarkAblationPagingCapacity regenerates A4: paging-occasion
// congestion vs per-PO record capacity.
func BenchmarkAblationPagingCapacity(b *testing.B) {
	o := benchOptions()
	o.Runs = 2
	for i := 0; i < b.N; i++ {
		res, err := experiment.PagingCapacity(o, []int{1, 16})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Overflows[1].Mean, "overflows-cap1")
	}
}

// BenchmarkExtensionSCPTM regenerates X1: SC-PTM's standing monitoring cost
// against the on-demand mechanisms.
func BenchmarkExtensionSCPTM(b *testing.B) {
	o := benchOptions()
	o.Runs = 2
	for i := 0; i < b.N; i++ {
		res, err := experiment.SCPTMComparison(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LightIncrease[core.MechanismSCPTM].Mean*100, "SCPTM-%")
		b.ReportMetric(res.LightIncrease[core.MechanismDASC].Mean*100, "DASC-%")
	}
}

// BenchmarkFig7FlatMemory10kRuns drives the streaming reducer at a run
// count the pre-streaming harness would have materialised as a 10k-slot
// result slice: every campaign now folds into O(fleet sizes) accumulators
// the moment its index-ordered prefix completes, with at most O(workers)
// results buffered. live-KB reports the retained heap growth across one
// full sweep — watch that it stays flat as -runs grows, unlike ns/op.
func BenchmarkFig7FlatMemory10kRuns(b *testing.B) {
	o := experiment.DefaultOptions()
	o.Runs = 10000
	o.FleetSizes = []int{30} // small fleets: the point is run count, not fleet size
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig7(o)
		if err != nil {
			b.Fatal(err)
		}
		if res.Transmissions.Points[0].Y.N != o.Runs {
			b.Fatalf("aggregated %d runs", res.Transmissions.Points[0].Y.N)
		}
	}
	b.StopTimer()
	runtime.GC()
	runtime.ReadMemStats(&after)
	grew := float64(after.HeapAlloc) - float64(before.HeapAlloc)
	b.ReportMetric(grew/1024, "live-KB")
}

// --- component benchmarks ---------------------------------------------------

// BenchmarkDRSCPlanner measures one DR-SC planning pass at paper scale
// (N = 1000), the heaviest single algorithm in the library.
func BenchmarkDRSCPlanner(b *testing.B) {
	fleet, err := traffic.PaperCalibratedMix().Generate(1000, rng.NewStream(1))
	if err != nil {
		b.Fatal(err)
	}
	devices, err := core.FleetFromTraffic(fleet)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params := core.Params{Now: 0, TI: 10 * simtime.Second, TieBreak: rng.NewStream(int64(i))}
		plan, err := core.DRSCPlanner{}.Plan(devices, params)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(plan.NumTransmissions()), "tx")
	}
}

// BenchmarkDASCPlanner measures one DA-SC planning pass at paper scale.
func BenchmarkDASCPlanner(b *testing.B) {
	fleet, err := traffic.PaperCalibratedMix().Generate(1000, rng.NewStream(1))
	if err != nil {
		b.Fatal(err)
	}
	devices, err := core.FleetFromTraffic(fleet)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params := core.Params{Now: 0, TI: 10 * simtime.Second}
		if _, err := (core.DASCPlanner{}).Plan(devices, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignDASC measures a full end-to-end DA-SC campaign (plan +
// event simulation + accounting) on a 500-device fleet.
func BenchmarkCampaignDASC(b *testing.B) {
	fleet, err := traffic.PaperCalibratedMix().Generate(500, rng.NewStream(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := nbiot.RunCampaign(nbiot.CampaignConfig{
			Mechanism:       nbiot.MechanismDASC,
			Fleet:           fleet,
			TI:              10 * nbiot.Second,
			PayloadBytes:    nbiot.Size1MB,
			Seed:            int64(i),
			UniformCoverage: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.NumTransmissions != 1 {
			b.Fatalf("DA-SC used %d transmissions", res.NumTransmissions)
		}
	}
}

// BenchmarkPagingScheduleDerivation measures TS 36.304 PF/PO derivation.
func BenchmarkPagingScheduleDerivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := nbiot.DRXConfig{UEID: uint32(i % 4096), Cycle: nbiot.Cycle163s}
		if _, err := nbiot.NewPagingSchedule(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
