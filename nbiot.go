// Package nbiot is a simulation library for device grouping in
// Narrowband-IoT multicast, reproducing "On Device Grouping for Efficient
// Multicast Communications in Narrowband-IoT" (Tsoukaneri & Marina,
// ICDCS 2018).
//
// NB-IoT devices sleep on (extended) DRX cycles and wake only at paging
// occasions. Distributing a firmware update to a large fleet therefore
// requires grouping devices so they can share multicast transmissions. The
// library implements the paper's three grouping mechanisms plus the unicast
// baseline, a full discrete-event NB-IoT cell model to execute them
// (paging, random access, RRC signalling, link airtime, energy accounting),
// and the evaluation harness regenerating every figure of the paper.
//
// # Quick start
//
//	fleet, _ := nbiot.PaperCalibratedMix().Generate(500, nbiot.NewStream(1))
//	res, _ := nbiot.RunCampaign(nbiot.CampaignConfig{
//	    Mechanism:    nbiot.MechanismDASC,
//	    Fleet:        fleet,
//	    TI:           10 * nbiot.Second,
//	    PayloadBytes: nbiot.Size1MB,
//	    Seed:         42,
//	})
//	fmt.Println(res.NumTransmissions) // 1 — DA-SC synchronises the fleet
//
// The deeper layers are importable directly for advanced use:
// nbiot/internal packages are reachable from code living in this module;
// external users work through this facade, which re-exports the stable
// surface as type aliases.
package nbiot

import (
	"context"
	"io"
	"os"
	"time"

	"nbiot/internal/analysis"
	"nbiot/internal/battery"
	"nbiot/internal/campaign"
	"nbiot/internal/cell"
	"nbiot/internal/coordinator"
	"nbiot/internal/core"
	"nbiot/internal/drx"
	"nbiot/internal/energy"
	"nbiot/internal/experiment"
	"nbiot/internal/multicast"
	"nbiot/internal/network"
	"nbiot/internal/phy"
	"nbiot/internal/rng"
	"nbiot/internal/runner"
	"nbiot/internal/simtime"
	"nbiot/internal/stats"
	"nbiot/internal/telemetry"
	"nbiot/internal/trace"
	"nbiot/internal/traffic"
)

// --- time ---------------------------------------------------------------------

// Ticks is simulated time in 1 ms subframes.
type Ticks = simtime.Ticks

// Time units.
const (
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
	Minute      = simtime.Minute
	Hour        = simtime.Hour
)

// --- mechanisms -----------------------------------------------------------------

// Mechanism identifies a grouping mechanism.
type Mechanism = core.Mechanism

// The paper's mechanisms and the unicast baseline.
const (
	// MechanismUnicast serves each device individually at its own next
	// paging occasion (energy-optimal baseline, Sec. IV-A).
	MechanismUnicast = core.MechanismUnicast
	// MechanismDRSC respects DRX and covers the fleet with a greedy set
	// cover over TI windows (Sec. III-A).
	MechanismDRSC = core.MechanismDRSC
	// MechanismDASC temporarily shortens DRX cycles so a single
	// transmission covers everyone (Sec. III-B).
	MechanismDASC = core.MechanismDASC
	// MechanismDRSI announces the transmission in advance via a paging
	// extension — single transmission, but not standards compliant
	// (Sec. III-C).
	MechanismDRSI = core.MechanismDRSI
	// MechanismSCPTM is the standardised SC-PTM baseline the paper argues
	// against: subscription-based, with devices continuously monitoring the
	// SC-MCCH control channel (Sec. II-A; extension experiment X1).
	MechanismSCPTM = core.MechanismSCPTM
)

// Mechanisms lists baseline + grouping mechanisms in presentation order.
func Mechanisms() []Mechanism { return core.Mechanisms() }

// GroupingMechanisms lists the paper's three grouping mechanisms.
func GroupingMechanisms() []Mechanism { return core.GroupingMechanisms() }

// Planner produces delivery plans; see NewPlanner.
type Planner = core.Planner

// Plan is a complete delivery schedule.
type Plan = core.Plan

// PlanParams configures planning (TI, guard, tie-breaking).
type PlanParams = core.Params

// PlannerDevice is the planner's per-device view.
type PlannerDevice = core.Device

// NewPlanner returns the planner implementing a mechanism.
func NewPlanner(m Mechanism) (Planner, error) { return core.NewPlanner(m) }

// FleetFromTraffic converts generated traffic devices into planner devices.
func FleetFromTraffic(devs []Device) ([]PlannerDevice, error) {
	return core.FleetFromTraffic(devs)
}

// --- DRX ------------------------------------------------------------------------

// Cycle is a DRX/eDRX cycle length.
type Cycle = drx.Cycle

// The (e)DRX ladder (every value is twice the previous; 0.32 s – 2.56 s is
// regular DRX, 20.48 s – 10485.76 s is eDRX).
const (
	Cycle320ms  = drx.Cycle320ms
	Cycle640ms  = drx.Cycle640ms
	Cycle1280ms = drx.Cycle1280ms
	Cycle2560ms = drx.Cycle2560ms
	Cycle20s    = drx.Cycle20s
	Cycle40s    = drx.Cycle40s
	Cycle81s    = drx.Cycle81s
	Cycle163s   = drx.Cycle163s
	Cycle327s   = drx.Cycle327s
	Cycle655s   = drx.Cycle655s
	Cycle1310s  = drx.Cycle1310s
	Cycle2621s  = drx.Cycle2621s
	Cycle5242s  = drx.Cycle5242s
	Cycle10485s = drx.Cycle10485s
)

// DRXConfig is one device's paging configuration.
type DRXConfig = drx.Config

// PagingSchedule is a device's periodic paging-occasion schedule.
type PagingSchedule = drx.Schedule

// NewPagingSchedule derives a schedule per TS 36.304.
func NewPagingSchedule(cfg DRXConfig) (PagingSchedule, error) { return drx.NewSchedule(cfg) }

// CycleLadder returns all configurable (e)DRX values in increasing order.
// The caller owns the returned slice.
func CycleLadder() []Cycle {
	l := drx.Ladder()
	out := make([]Cycle, len(l))
	copy(out, l)
	return out
}

// --- fleets -----------------------------------------------------------------------

// Device is one generated NB-IoT device.
type Device = traffic.Device

// Mix is a weighted fleet composition.
type Mix = traffic.Mix

// DeviceClass is one category within a mix.
type DeviceClass = traffic.Class

// Built-in fleet mixes.
func EricssonCityMix() Mix    { return traffic.EricssonCityMix() }
func PaperCalibratedMix() Mix { return traffic.PaperCalibratedMix() }
func ShortHeavyMix() Mix      { return traffic.ShortHeavyMix() }
func LongHeavyMix() Mix       { return traffic.LongHeavyMix() }
func UniformEDRXMix() Mix     { return traffic.UniformMix() }
func Mixes() map[string]Mix   { return traffic.Mixes() }

// Stream is a deterministic random stream.
type Stream = rng.Stream

// NewStream returns a deterministic random stream for fleet generation.
func NewStream(seed int64) *Stream { return rng.NewStream(seed) }

// --- campaigns ----------------------------------------------------------------------

// CampaignConfig configures one simulated multicast campaign.
type CampaignConfig = cell.Config

// CampaignResult is the outcome of a campaign.
type CampaignResult = cell.Result

// DeviceOutcome is one device's campaign outcome.
type DeviceOutcome = cell.DeviceOutcome

// Uptime is per-radio-state accumulated time.
type Uptime = energy.Uptime

// PowerProfile converts uptime into joules; see DefaultPowerProfile.
type PowerProfile = energy.PowerProfile

// DefaultPowerProfile returns a typical NB-IoT module power profile (3 µW
// deep sleep, 20 mW light sleep, 220 mW connected).
func DefaultPowerProfile() PowerProfile { return energy.DefaultPowerProfile() }

// RunCampaign executes one multicast campaign end-to-end on the simulated
// cell and returns per-device uptime, delivery times and eNB bandwidth
// counters.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) { return cell.Run(cfg) }

// CoverageClass is the NB-IoT coverage-enhancement level (CE0–CE2).
type CoverageClass = phy.CoverageClass

// Coverage enhancement levels.
const (
	CE0 = phy.CE0
	CE1 = phy.CE1
	CE2 = phy.CE2
)

// Payload sizes evaluated by the paper.
const (
	Size100KB = multicast.Size100KB
	Size1MB   = multicast.Size1MB
	Size10MB  = multicast.Size10MB
)

// --- battery projections -----------------------------------------------------------------

// BatteryConfig describes one device's duty cycle and battery for life
// projections (the paper's "more than 10 years on a single battery").
type BatteryConfig = battery.Config

// DefaultBatteryCapacityJoules is a 5 Wh primary cell.
const DefaultBatteryCapacityJoules = battery.DefaultCapacityJoules

// CampaignJoules extracts the per-device energy cost of one campaign from
// simulator uptime.
func CampaignJoules(profile PowerProfile, extraLight, connected Ticks) float64 {
	return battery.CampaignJoules(profile, extraLight, connected)
}

// --- tracing ------------------------------------------------------------------------------

// TraceRecorder records a campaign's event timeline; pass one in
// CampaignConfig.Trace.
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns a bounded timeline recorder.
func NewTraceRecorder(max int) *TraceRecorder { return trace.NewRecorder(max) }

// --- multi-cell networks & city rollouts -------------------------------------------------
//
// The network layer models an operator's multi-cell deployment (ref [3]'s
// coordination entity distributes content and device lists to each cell).
// Its public API is heterogeneity-first: a ScenarioSpec declares groups of
// cells (CellProfile) with their own coverage mixes, mechanisms, traffic
// mixes, TI and payload overrides, plus optional churn waves, and both the
// homogeneous helpers below and `nbsim rollout` are thin layers over it.

// NetworkSite is one eNB and its attached devices. Site fleets must be
// densely identified: device at fleet position i has ID i (NewNetwork
// rejects anything else).
type NetworkSite = network.Site

// Network is a multi-cell operator network.
type Network = network.Network

// RolloutConfig configures a network-wide firmware rollout. Its Parallelism
// field bounds concurrent cell simulations (<= 0 means DefaultWorkers());
// results are bit-identical for every value. Set DiscardCellResults for
// huge rollouts: per-cell results are folded into the totals as they
// stream and then dropped, keeping memory O(Parallelism) in the cell
// count.
type RolloutConfig = network.RolloutConfig

// Rollout is the aggregated outcome of a network-wide campaign.
type Rollout = network.Rollout

// NewNetwork builds a network from explicit sites.
func NewNetwork(sites []NetworkSite) (*Network, error) { return network.New(sites) }

// CellProfile declares one group of identically-configured cells inside a
// ScenarioSpec: its device budget (fixed per cell, or a weighted share of
// the scenario total) and any per-group overrides of the scenario-wide
// mechanism, traffic mix, TI, payload, and coverage-class distribution.
type CellProfile = network.CellProfile

// RolloutWave is one snapshot of a multi-wave rollout. Waves after the
// first may churn the fleet — seeded detach/attach/migrate fractions —
// and override the payload (e.g. a small patch after the full image).
type RolloutWave = network.RolloutWave

// ScenarioSpec is the file-loadable (JSON, format-versioned) description
// of a heterogeneous city rollout: profile groups expanded into per-site
// configurations plus the wave sequence. It is the single source the
// library, `nbsim rollout -spec`, and campaign manifests share.
type ScenarioSpec = network.ScenarioSpec

// Scenario is a ScenarioSpec resolved against a seed: per-site profiles
// assigned, device counts drawn. It is a pure function of (spec, seed).
type Scenario = network.Scenario

// ScenarioRunConfig bounds a scenario run (Parallelism, and
// DiscardCellResults to keep memory O(Parallelism) at any city size).
type ScenarioRunConfig = network.ScenarioRunConfig

// WaveResult aggregates one wave of an executed scenario.
type WaveResult = network.WaveResult

// ScenarioRollout is a whole executed scenario, one WaveResult per wave.
type ScenarioRollout = network.ScenarioRollout

// LoadScenarioSpec reads, parses, and validates a scenario-spec JSON file.
func LoadScenarioSpec(path string) (ScenarioSpec, error) { return network.LoadScenarioSpec(path) }

// ParseScenarioSpec parses and validates scenario-spec JSON (unknown
// fields are rejected, so typos fail loudly).
func ParseScenarioSpec(data []byte) (ScenarioSpec, error) { return network.ParseScenarioSpec(data) }

// NewScenario resolves a spec against a seed. The same (spec, seed) pair
// always yields the identical scenario, whatever machine or worker count.
func NewScenario(spec ScenarioSpec, seed int64) (*Scenario, error) {
	return network.NewScenario(spec, seed)
}

// PopulateConfig configures NewNetworkFromSpec: the seed, the worker
// bound, and compatibility hooks for the deprecated entry points.
type PopulateConfig = network.PopulateConfig

// NewNetworkFromSpec materialises a scenario's wave-0 network — every
// cell populated per its profile, concurrently and reproducibly. This is
// the single entry point behind the deprecated Populate* helpers.
func NewNetworkFromSpec(spec ScenarioSpec, cfg PopulateConfig) (*Network, error) {
	return network.NewFromSpec(spec, cfg)
}

// PopulateNetwork spreads a generated fleet over numCells cells, drawing
// serially from one stream.
//
// Deprecated: use NewNetworkFromSpec with a one-profile ScenarioSpec (or
// PopulateNetworkParallel for the seeded equivalent); this serial path
// supports no heterogeneity and is kept only for byte-compatibility with
// existing callers.
func PopulateNetwork(numCells, totalDevices int, mix Mix, stream *Stream) (*Network, error) {
	return network.Populate(numCells, totalDevices, mix, stream)
}

// PopulateNetworkParallel is the scale path for homogeneous network
// generation: every cell draws its fleet from its own seed-derived
// stream, concurrently on the bounded pool (workers <= 0 means
// DefaultWorkers()). The network is a pure function of the arguments —
// identical for every worker count.
//
// Deprecated: use NewNetworkFromSpec, which generalises this to
// heterogeneous cell profiles and produces byte-identical networks for
// the equivalent one-profile spec.
func PopulateNetworkParallel(numCells, totalDevices int, mix Mix, seed int64, workers int) (*Network, error) {
	return network.PopulateParallel(numCells, totalDevices, mix, seed, workers)
}

// --- analytical models -----------------------------------------------------------------

// AdjustedFraction is the probability a device with the given cycle needs a
// DA-SC adjustment: max(0, 1 − TI/cycle).
func AdjustedFraction(cycle Cycle, ti Ticks) float64 { return analysis.AdjustedFraction(cycle, ti) }

// ExpectedExtraWakeups is the mean-field estimate of the extra paging
// occasions a DA-SC adjustment costs a device with the given cycle.
func ExpectedExtraWakeups(cycle Cycle, ti Ticks) float64 {
	return analysis.ExpectedExtraWakeups(cycle, ti)
}

// ExpectedDRSCTransmissions is the mean-field estimate of the DR-SC
// transmission count for a fleet — the model behind Fig. 7's trend.
func ExpectedDRSCTransmissions(fleet []Device, ti Ticks) float64 {
	return analysis.ExpectedDRSCTransmissions(fleet, ti)
}

// --- parallel execution -----------------------------------------------------------------

// DefaultWorkers reports the worker count used when a Workers or
// Parallelism knob is left at zero: runtime.NumCPU(). Campaigns of a sweep
// are independent simulations, so ExperimentOptions.Workers and
// RolloutConfig.Parallelism only change wall-clock time, never results —
// every sweep derives each campaign's randomness from (seed, task index)
// and streams through a serial index-ordered reducer on the shared
// bounded pool (internal/runner), buffering only O(workers) results
// however many runs the sweep spans.
func DefaultWorkers() int { return runner.DefaultWorkers() }

// RunRecord is one completed sweep unit, delivered in index order through
// ExperimentOptions.Record as the streaming reducer consumes it — the
// hook for spilling per-run results to disk (see nbsim -jsonl) instead of
// holding them in memory.
type RunRecord = experiment.RunRecord

// --- evaluation harness ----------------------------------------------------------------

// ExperimentOptions configures the figure-regeneration harness. Its Workers
// field bounds concurrent campaign simulations (<= 0 means
// DefaultWorkers()); results are bit-identical for every value.
type ExperimentOptions = experiment.Options

// DefaultExperimentOptions returns the paper's evaluation parameters
// (100 runs per point, 500-device fleets, TI = 10 s, 100..1000 sweep).
func DefaultExperimentOptions() ExperimentOptions { return experiment.DefaultOptions() }

// Figure results.
type (
	Fig6aResult = experiment.Fig6aResult
	Fig6bResult = experiment.Fig6bResult
	Fig7Result  = experiment.Fig7Result
)

// Fig6a regenerates Fig. 6(a): relative light-sleep uptime increase.
func Fig6a(o ExperimentOptions) (*Fig6aResult, error) { return experiment.Fig6a(o) }

// Fig6b regenerates Fig. 6(b): relative connected-mode uptime increase.
func Fig6b(o ExperimentOptions) (*Fig6bResult, error) { return experiment.Fig6b(o) }

// Fig7 regenerates Fig. 7: DR-SC transmissions vs fleet size.
func Fig7(o ExperimentOptions) (*Fig7Result, error) { return experiment.Fig7(o) }

// --- sweep registry ----------------------------------------------------------
//
// Every sweep — the figures above, the ablations, and user-defined grids —
// is registered behind one declarative task space: named axes whose cross
// product is the sweep's global index space. One engine enumerates, shards,
// records, and folds them all, so shard/resume/merge semantics are uniform
// across every experiment.

// TaskSpace is a sweep's declarative task space: the ordered axes whose
// cross product (row-major, last axis fastest) is the global task-index
// space that sharding, resume offsets, and record streams all address.
type TaskSpace = experiment.TaskSpace

// TaskAxis is one named dimension of a TaskSpace.
type TaskAxis = experiment.Axis

// SweepResult is any registered sweep's outcome; every result renders a
// table, and figure results additionally render a chart.
type SweepResult = experiment.SweepResult

// Sweeps lists the registered sweep names in sorted order.
func Sweeps() []string { return experiment.Sweeps() }

// SweepSpace reports the task space a registered sweep enumerates at the
// given options.
func SweepSpace(name string, o ExperimentOptions) (TaskSpace, error) {
	return experiment.SpaceFor(name, o)
}

// RunSweep executes a registered sweep by name through the shared engine,
// honouring the options' shard/skip/record fields.
func RunSweep(name string, o ExperimentOptions) (SweepResult, error) {
	return experiment.RunSweep(name, o)
}

// SweepFromRecords rebuilds a registered sweep's result from a complete
// record stream, bit-identical to the live sweep's. Pass the manifest's
// task space for sweeps over custom spaces (grids); a zero TaskSpace means
// the sweep's default space at o.
func SweepFromRecords(name string, o ExperimentOptions, sp TaskSpace, src RecordSeq) (SweepResult, error) {
	return experiment.SweepFromRecords(name, o, sp, src)
}

// GridSpec is a user-definable scenario grid — rollout sizes × mechanisms ×
// traffic mixes × TI ladder × payloads — loadable from JSON (`nbsim grid
// -spec`). Empty axes default from the options.
type GridSpec = experiment.GridSpec

// GridCell is one scenario of a grid with its metric distribution over runs.
type GridCell = experiment.GridCell

// GridResult is a grid sweep's outcome, one cell per scenario.
type GridResult = experiment.GridResult

// RunGrid executes a user-defined scenario grid as one task space on the
// shared sweep engine, with full shard/resume/record support.
func RunGrid(o ExperimentOptions, spec GridSpec) (*GridResult, error) {
	return experiment.Grid(o, spec)
}

// RolloutWaveSummary aggregates one wave of a rollout sweep.
type RolloutWaveSummary = experiment.RolloutWaveSummary

// RolloutResult is a rollout sweep's outcome, one summary per wave.
type RolloutResult = experiment.RolloutResult

// RolloutSpace enumerates a scenario spec as its (wave, cell) task space
// — the global index space rollout shards, resumes, and merges address.
func RolloutSpace(spec ScenarioSpec) (TaskSpace, error) { return experiment.RolloutSpace(spec) }

// RunRollout executes a city-rollout scenario as a registered sweep on
// the shared engine: one task per (wave, cell), full shard/resume/record
// support, per-cell results folded as they stream so memory stays
// O(Workers) at any city size. This is the engine behind
// `nbsim rollout -spec`.
func RunRollout(o ExperimentOptions, spec ScenarioSpec) (*RolloutResult, error) {
	return experiment.Rollout(o, spec)
}

// --- distributed campaigns ---------------------------------------------------
//
// ExperimentOptions.ShardIndex/ShardCount/SkipTasks plus internal/campaign
// turn one-shot sweeps into durable, distributable campaigns: each shard
// runs in its own process against the same seed, records spill to JSONL
// with a manifest sidecar, interrupted shards resume from their completed
// prefix, and merging the shard files reproduces the single-process output
// byte for byte. See `nbsim -shard/-resume/merge` for the CLI form and
// examples/distributed-campaign for the library form.

// CampaignManifest describes one shard of a configured sweep. It is
// serialized next to the shard's JSONL record file so results are
// self-describing: resuming and merging processes validate against it
// instead of trusting flags.
type CampaignManifest = campaign.Manifest

// CampaignCheckpoint is the resume state recovered from an interrupted
// record file: the completed task prefix and the crash damage found.
type CampaignCheckpoint = campaign.Checkpoint

// NewCampaignManifest builds the manifest for one shard of a registered
// sweep's campaign (any name in Sweeps()); shardCount <= 1 means unsharded.
func NewCampaignManifest(experimentName string, o ExperimentOptions, shardIndex, shardCount int) (CampaignManifest, error) {
	return campaign.New(experimentName, o, shardIndex, shardCount)
}

// NewGridCampaignManifest builds the manifest for one shard of a
// scenario-grid campaign; the spec rides along in the manifest so the
// record file documents the scenario it swept.
func NewGridCampaignManifest(spec GridSpec, o ExperimentOptions, shardIndex, shardCount int) (CampaignManifest, error) {
	return campaign.NewGrid(spec, o, shardIndex, shardCount)
}

// NewRolloutCampaignManifest builds the manifest for one shard of a
// city-rollout campaign; the normalized scenario spec rides along in the
// manifest, so shards of different scenarios never merge.
func NewRolloutCampaignManifest(spec ScenarioSpec, o ExperimentOptions, shardIndex, shardCount int) (CampaignManifest, error) {
	return campaign.NewRollout(spec, o, shardIndex, shardCount)
}

// ReadCampaignManifest loads and validates a manifest sidecar.
func ReadCampaignManifest(path string) (CampaignManifest, error) { return campaign.ReadFile(path) }

// CampaignManifestPath is where a record file's manifest sidecar lives.
func CampaignManifestPath(jsonlPath string) string { return campaign.Path(jsonlPath) }

// CampaignRecordWriter returns an ExperimentOptions.Record hook appending
// one JSON line per record to w — the on-disk encoding the campaign layer
// scans and merges.
func CampaignRecordWriter(w io.Writer) func(RunRecord) error { return campaign.RecordWriter(w) }

// ResumeCampaign validates an interrupted record file against its
// manifest, truncates the torn line a crash may have left, and reopens the
// file for appending; run the sweep again with SkipTasks set to the
// checkpoint's Completed and the finished file is byte-identical to an
// uninterrupted run's.
func ResumeCampaign(path string, m CampaignManifest) (*os.File, CampaignCheckpoint, error) {
	return campaign.OpenResume(path, m)
}

// MergeCampaignShards interleaves a complete shard set's record files back
// into single-process order, writing the byte-identical merged stream to
// out and handing each record, in global index order, to each (may be
// nil). Feed each into Fig6a/6b/7FromRecords to rebuild the exact tables.
func MergeCampaignShards(out io.Writer, paths []string, each func(RunRecord) error) (CampaignManifest, error) {
	return campaign.Merge(out, paths, each)
}

// RecordSeq streams a sweep's records in increasing index order — the
// consuming counterpart of ExperimentOptions.Record.
type RecordSeq = experiment.RecordSeq

// Fig6aFromRecords rebuilds the Fig. 6(a) result from a complete record
// stream, bit-identical to the live sweep's result.
func Fig6aFromRecords(o ExperimentOptions, src RecordSeq) (*Fig6aResult, error) {
	return experiment.Fig6aFromRecords(o, src)
}

// Fig6bFromRecords rebuilds the Fig. 6(b) result from a complete record
// stream, bit-identical to the live sweep's result.
func Fig6bFromRecords(o ExperimentOptions, src RecordSeq) (*Fig6bResult, error) {
	return experiment.Fig6bFromRecords(o, src)
}

// Fig7FromRecords rebuilds the Fig. 7 result from a complete record
// stream, bit-identical to the live sweep's result.
func Fig7FromRecords(o ExperimentOptions, src RecordSeq) (*Fig7Result, error) {
	return experiment.Fig7FromRecords(o, src)
}

// P2Quantile estimates a single quantile of a stream in O(1) memory (the
// P² algorithm) — the latency-style consumer for long record streams that
// must never retain every sample.
type P2Quantile = stats.P2Quantile

// NewP2Quantile returns a streaming estimator for the p-quantile, 0 < p < 1.
func NewP2Quantile(p float64) *P2Quantile { return stats.NewP2Quantile(p) }

// StreamSummary couples a streaming mean/min/max accumulator with P²
// P50/P95/P99 estimators — the per-metric unit of campaign telemetry.
type StreamSummary = stats.StreamSummary

// NewStreamSummary returns an empty stream summary.
func NewStreamSummary() *StreamSummary { return stats.NewStreamSummary() }

// --- live campaign telemetry -------------------------------------------------

// CampaignStatus is one worker's published live state: shard identity,
// progress, throughput, ETA, and per-metric streaming statistics. Workers
// rewrite it atomically in a `<jsonl>.status` sidecar while they run.
type CampaignStatus = telemetry.Status

// CampaignMetricStats is one metric's streaming summary inside a status.
type CampaignMetricStats = telemetry.MetricStats

// TrackedCampaign is the immutable identity a StatusTracker publishes;
// derive it from a manifest with CampaignManifest.Telemetry, or fill it by
// hand for producers without one.
type TrackedCampaign = telemetry.Campaign

// StatusTracker accumulates one worker's progress and publishes
// CampaignStatus under an every-N-tasks / every-interval policy. Feed it
// from ExperimentOptions.Observe; it never perturbs the sweep.
type StatusTracker = telemetry.Tracker

// StatusTrackerOptions tunes status publication cadence.
type StatusTrackerOptions = telemetry.TrackerOptions

// StatusSink receives status publications.
type StatusSink = telemetry.Sink

// CampaignMetricSet folds a record stream into per-metric streaming
// summaries — shared between the tracker and end-of-run reporting.
type CampaignMetricSet = telemetry.MetricSet

// NewCampaignMetricSet returns an empty metric set.
func NewCampaignMetricSet() *CampaignMetricSet { return telemetry.NewMetricSet() }

// NewStatusTracker builds a tracker for c publishing to sink; ms may be
// nil (a fresh set is allocated) or shared with the caller's reporting.
func NewStatusTracker(c TrackedCampaign, ms *CampaignMetricSet, sink StatusSink, opt StatusTrackerOptions) *StatusTracker {
	return telemetry.NewTracker(c, ms, sink, opt)
}

// NewStatusFileSink publishes each status atomically at path
// (write-temp-then-rename: readers never observe a torn file).
func NewStatusFileSink(path string) StatusSink { return telemetry.NewFileSink(path) }

// CampaignStatusPath is where a record file's status sidecar lives.
func CampaignStatusPath(jsonlPath string) string { return telemetry.StatusPath(jsonlPath) }

// ReadCampaignStatus loads one status sidecar.
func ReadCampaignStatus(path string) (CampaignStatus, error) { return telemetry.ReadStatus(path) }

// CampaignShardStatus is one shard's status as seen by a reader, with
// provenance and staleness.
type CampaignShardStatus = telemetry.ShardStatus

// CampaignSnapshot is the fleet-wide view over many shard statuses —
// aggregate progress, per-shard ETA and straggler flags, merged
// percentile estimates. `nbsim tail` renders these.
type CampaignSnapshot = telemetry.Snapshot

// LoadCampaignStatuses reads status paths, splitting parsed shards from
// missing (absent or unreadable) files; it never fails.
func LoadCampaignStatuses(paths []string, now time.Time) ([]CampaignShardStatus, []string) {
	return telemetry.Load(paths, now)
}

// AggregateCampaignStatus folds shard statuses into a fleet snapshot
// using the default heartbeat threshold.
func AggregateCampaignStatus(shards []CampaignShardStatus, missing []string) CampaignSnapshot {
	return telemetry.Aggregate(shards, missing)
}

// ShardHealth classifies a shard's status file by freshness: live, stale
// (its worker stopped publishing — the restart signal a supervisor acts
// on), or done.
type ShardHealth = telemetry.ShardHealth

const (
	ShardHealthLive  = telemetry.HealthLive
	ShardHealthStale = telemetry.HealthStale
	ShardHealthDone  = telemetry.HealthDone
)

// DefaultStatusHeartbeat is the staleness threshold applied when the
// caller does not choose one.
const DefaultStatusHeartbeat = telemetry.DefaultHeartbeat

// AggregateCampaignStatusHeartbeat folds shard statuses into a fleet
// snapshot, classifying each shard live/stale/done against an explicit
// heartbeat threshold (<= 0 means DefaultStatusHeartbeat).
func AggregateCampaignStatusHeartbeat(shards []CampaignShardStatus, missing []string, heartbeat time.Duration) CampaignSnapshot {
	return telemetry.AggregateHeartbeat(shards, missing, heartbeat)
}

// --- campaign coordination ---------------------------------------------------

// RetryBackoff is a capped exponential backoff with deterministic seeded
// jitter — the restart-delay policy the campaign coordinator applies to
// crashed shard workers. The zero value is usable (500ms base, 30s cap).
type RetryBackoff = runner.Backoff

// NewRetryBackoff builds a backoff with all three knobs set.
func NewRetryBackoff(base, cap time.Duration, seed int64) *RetryBackoff {
	return runner.NewBackoff(base, cap, seed)
}

// CampaignWorker is one spawned shard attempt as the coordinator sees it;
// adapt real processes with StartWorkerProcess or supply in-process
// implementations.
type CampaignWorker = coordinator.Worker

// SpawnWorkerFunc launches one attempt at a shard; resume reports whether
// the shard has durable state to recover.
type SpawnWorkerFunc = coordinator.SpawnFunc

// CoordinatorOptions configures CoordinateCampaign: fleet size, status
// sidecars to watch, the spawn hook, and the supervision policy
// (heartbeat, poll period, retry budget, backoff, drain grace).
type CoordinatorOptions = coordinator.Options

// CoordinatorShardReport is one shard's supervision history.
type CoordinatorShardReport = coordinator.ShardReport

// CoordinatorResult is the supervision outcome: per-shard reports plus
// fleet-wide restart and stall totals.
type CoordinatorResult = coordinator.Result

// CoordinateCampaign supervises a fleet of shard workers until every
// shard is durably complete: it spawns them, watches their status
// sidecars for heartbeats, restarts crashed or wedged workers from their
// checkpoints under capped seeded backoff, and fails loudly — draining
// the fleet — when a shard exhausts its retry budget or ctx is
// cancelled. Because resumed shards append exactly the bytes an
// uninterrupted run would have written, the completed campaign merges
// byte-identically no matter how many workers died. This is the engine
// behind `nbsim coordinate`.
func CoordinateCampaign(ctx context.Context, o CoordinatorOptions) (CoordinatorResult, error) {
	return coordinator.Run(ctx, o)
}

// StartWorkerProcess launches a shard worker process (inheriting the
// environment plus extraEnv) adapted to the CampaignWorker interface.
func StartWorkerProcess(exe string, args, extraEnv []string, stdout, stderr io.Writer) (CampaignWorker, error) {
	return coordinator.StartProcess(exe, args, extraEnv, stdout, stderr)
}

// WorkerTailBuffer is a bounded writer keeping the last few KB a worker
// wrote — enough of a crashed worker's stderr to diagnose it post-mortem.
type WorkerTailBuffer = coordinator.TailBuffer
